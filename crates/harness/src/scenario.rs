//! The declarative unit of work: one isolated, deterministic cloud run.
//!
//! A [`Scenario`] names a workload, a defense arm, a replica placement,
//! [`CloudConfig`] overrides, a seed, and a duration. [`Scenario::run`]
//! builds a fresh [`CloudSim`] from it, drives the event loop to
//! completion, and extracts a [`ScenarioResult`] — plain data, safe to
//! aggregate across threads. Two runs of the same scenario produce
//! identical results on any machine; that is the property every layer
//! above this one leans on.

use crate::profile::Phases;
use simkit::time::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::Instant;
use stopwatch_core::cloud::{CloudBuilder, CloudSim};
use stopwatch_core::config::CloudConfig;
use workloads::registry::{self, InstalledWorkload, Workload, WorkloadParams};

/// Slot counters folded into every result (summed over all replicas).
const SLOT_COUNTERS: [&str; 13] = [
    "net_irq",
    "disk_irq",
    "cache_irq",
    "vtimer_irq",
    "cache_probes",
    "cache_hits",
    "cache_misses",
    "timer_arms",
    "stalls",
    "sync_violations",
    "dd_violations",
    "dt_violations",
    "sched_preemptions",
];

/// One declarative cloud run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Unique label within a sweep (cell key plus seed).
    pub label: String,
    /// The grid cell this scenario belongs to (same for all seed shards).
    pub cell: String,
    /// Cell coordinates, in axis order, for report grouping.
    pub cell_params: Vec<(String, String)>,
    /// Workload registry key (`"web-http"`, `"parsec:ferret"`, ...).
    pub workload: String,
    /// Workload parameters handed to the registry.
    pub workload_params: Vec<(String, String)>,
    /// Host machine count; 0 means "as many as the placement needs".
    pub hosts: usize,
    /// Replica hosts of the workload VM; empty means hosts `0..replicas`.
    pub replica_hosts: Vec<usize>,
    /// Master seed for this run.
    pub seed: u64,
    /// Simulated-time budget; the run stops here even if clients are not
    /// done (reported via [`ScenarioResult::clients_done`]).
    pub duration: SimDuration,
    /// Extra simulated time after clients finish, letting in-flight output
    /// (e.g. attacker-side deliveries) drain before collection.
    pub drain: SimDuration,
    /// `CloudConfig` overrides applied over the default configuration.
    pub overrides: Vec<(String, String)>,
    /// Run on the pre-batching scalar hot paths (one-pop event loop,
    /// per-proposal median agreement) instead of the batched ones. The
    /// two modes produce identical results; this switch exists so
    /// determinism tests and `swbench perf --scalar` can measure the
    /// batched engine against its reference.
    pub scalar_reference: bool,
}

impl Scenario {
    /// A minimal scenario: `workload` under the default defense arm
    /// (StopWatch) at `seed`, default config, 60 simulated seconds. The
    /// arm is a config knob — add a `("defense", ...)` override to run
    /// another one.
    pub fn new(workload: &str, seed: u64) -> Self {
        Scenario {
            label: format!("{workload}#{seed}"),
            cell: workload.to_string(),
            cell_params: Vec::new(),
            workload: workload.to_string(),
            workload_params: Vec::new(),
            hosts: 0,
            replica_hosts: Vec::new(),
            seed,
            duration: SimDuration::from_secs(60),
            drain: SimDuration::from_millis(500),
            overrides: Vec::new(),
            scalar_reference: false,
        }
    }

    /// Resolves the effective config and placement.
    fn resolve(&self) -> Result<(CloudConfig, Vec<usize>, usize), String> {
        // The shard seed first, then overrides — so an explicit `seed`
        // override (e.g. a `cfg.seed` sweep axis) wins over sharding.
        let mut cfg = CloudConfig {
            seed: self.seed,
            ..CloudConfig::default()
        };
        cfg.apply_all(self.overrides.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
        let replica_hosts: Vec<usize> = if self.replica_hosts.is_empty() {
            (0..cfg.replicas).collect()
        } else {
            self.replica_hosts.clone()
        };
        let min_hosts = replica_hosts.iter().copied().max().unwrap_or(0) + 1;
        let hosts = self.hosts.max(min_hosts);
        Ok((cfg, replica_hosts, hosts))
    }

    /// The scenario's effective parameter set.
    fn params(&self) -> WorkloadParams {
        WorkloadParams::from_pairs(
            self.workload_params
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str())),
        )
    }

    /// The fully-resolved configuration this scenario runs under: every
    /// [`CloudConfig`] knob with its effective value, in schema order.
    /// The `seed` knob is omitted — it is the per-shard
    /// [`Scenario::seed`], reported separately so cell aggregates (which
    /// merge shards) stay well-defined.
    ///
    /// # Errors
    ///
    /// Reports bad overrides.
    pub fn resolved_config(&self) -> Result<Vec<(String, String)>, String> {
        let (cfg, _, _) = self.resolve()?;
        Ok(cfg
            .resolved()
            .into_iter()
            .filter(|(key, _)| key != "seed")
            .collect())
    }

    /// The fully-resolved workload parameters: every parameter the
    /// workload declares, with its explicit or default value, in schema
    /// order.
    ///
    /// # Errors
    ///
    /// Reports unknown workloads and unknown/ill-typed parameters.
    pub fn resolved_params(&self) -> Result<Vec<(String, String)>, String> {
        let workload = registry::require(&self.workload)?;
        let params = self.params();
        params.validate(&self.workload, workload.params())?;
        Ok(params.resolved(workload.params()))
    }

    /// Builds the cloud without running it (the hook integration tests and
    /// custom drivers use).
    ///
    /// # Errors
    ///
    /// Reports bad overrides, unknown workloads, and bad placements.
    pub fn build(&self) -> Result<(CloudSim, Box<dyn InstalledWorkload>), String> {
        let (cfg, replica_hosts, hosts) = self.resolve()?;
        let seed = cfg.seed; // post-override: workload streams follow the cloud
        let mut b = CloudBuilder::new(cfg, hosts);
        let wl = registry::install(&self.workload, &mut b, &replica_hosts, &self.params(), seed)?;
        let mut sim = b.build();
        if self.scalar_reference {
            sim.set_scalar_reference(true);
        }
        Ok((sim, wl))
    }

    /// Runs the scenario to completion and extracts its measurements.
    ///
    /// # Errors
    ///
    /// Reports build failures; a run that merely times out is **not** an
    /// error (it returns with `clients_done == false`).
    pub fn run(&self) -> Result<ScenarioResult, String> {
        self.run_phased(&mut Phases::default())
    }

    /// [`Scenario::run`] with the wall time of each phase — resolve,
    /// build, run, aggregate — added into `phases`. The timers read the
    /// monotonic host clock around simulated work; nothing inside the
    /// simulation observes them, so results stay deterministic.
    ///
    /// # Errors
    ///
    /// As [`Scenario::run`].
    pub fn run_phased(&self, phases: &mut Phases) -> Result<ScenarioResult, String> {
        self.run_phased_in(&mut ScenarioArena::new(), phases)
    }

    /// [`Scenario::run_phased`] against a worker-owned [`ScenarioArena`]:
    /// the scenario's config shape is resolved through the arena, so the
    /// second and later scenarios sharing a shape (every shard of a sweep
    /// cell, every pass of a perf bench) reuse the parsed config, the
    /// workload lookup, and the validated parameter set instead of
    /// re-deriving them. Results are bit-identical to [`Scenario::run`] —
    /// the arena caches only resolution, never simulation state.
    ///
    /// # Errors
    ///
    /// As [`Scenario::run`].
    pub fn run_phased_in(
        &self,
        arena: &mut ScenarioArena,
        phases: &mut Phases,
    ) -> Result<ScenarioResult, String> {
        let mut mark = Instant::now();
        let mut lap = |slot: &mut u64| {
            let now = Instant::now();
            *slot += now.duration_since(mark).as_nanos() as u64;
            mark = now;
        };
        let entry = arena.prepare(self)?;
        let mut cfg = entry.cfg.clone();
        if !entry.seed_overridden {
            // Same semantics as a fresh resolve: the shard seed applies
            // first, so an explicit `seed` override (baked into the
            // cached config) wins over it.
            cfg.seed = self.seed;
        }
        let resolved_config = entry.resolved_config.clone();
        let resolved_params = entry.resolved_params.clone();
        let replica_hosts = entry.replica_hosts.clone();
        let hosts = entry.hosts;
        let params = entry.params.clone();
        let workload = Arc::clone(&entry.workload);
        lap(&mut phases.resolve_ns);
        let seed = cfg.seed; // post-override: workload streams follow the cloud
        let mut b = CloudBuilder::new(cfg, hosts);
        let wl = registry::install_prepared(&workload, &mut b, &replica_hosts, &params, seed)?;
        let mut sim = b.build();
        if self.scalar_reference {
            sim.set_scalar_reference(true);
        }
        lap(&mut phases.build_ns);
        let deadline = SimTime::ZERO + self.duration;
        let finished_at = sim.run_until_clients_done(deadline);
        let clients_done = sim.cloud.clients_done();
        if self.drain > SimDuration::ZERO {
            sim.run_until(finished_at + self.drain);
        }
        lap(&mut phases.run_ns);
        if let Some(err) = sim.error() {
            // A structured slot failure (malformed scenario, driver bug)
            // fails this cell; the rest of the sweep keeps running.
            return Err(format!("slot failure: {err}"));
        }
        let replicas = sim.cloud.vm_replicas(wl.vm()).len() as u64;
        let outcome = wl.collect(&mut sim);
        let mut counters: Vec<(String, u64)> = sim
            .cloud
            .stats()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        for name in SLOT_COUNTERS {
            counters.push((name.to_string(), sim.cloud.total_counter(name)));
        }
        let defense = resolved_config
            .iter()
            .find(|(k, _)| k == "defense")
            .map(|(_, v)| v.clone())
            .expect("defense is a schema knob");
        let result = ScenarioResult {
            label: self.label.clone(),
            cell: self.cell.clone(),
            cell_params: self.cell_params.clone(),
            workload: self.workload.clone(),
            defense,
            resolved_config,
            resolved_params,
            seed: self.seed,
            samples_ms: outcome.samples_ms,
            completed: outcome.completed,
            extra: outcome.extra,
            clients_done,
            finished_ms: finished_at.duration_since(SimTime::ZERO).as_millis_f64(),
            events_executed: sim.sim.events_executed(),
            replicas,
            counters,
        };
        lap(&mut phases.aggregate_ns);
        Ok(result)
    }
}

/// A worker-owned cache of resolved scenario shapes.
///
/// A sweep shards each grid cell across seeds and a perf bench replays
/// the same scenario list pass after pass, so most scenarios a worker
/// sees differ from the previous one only in `seed` and `label`. The
/// arena keys on everything else — workload, parameters, overrides,
/// placement — and caches the expensive-to-derive parts of setup: the
/// parsed [`CloudConfig`], the workload registry lookup (an `RwLock`
/// acquisition), the validated parameter set, and both resolved
/// key/value listings. A hit replaces all of that with a config clone
/// and a seed patch.
///
/// The arena never caches simulation state; only resolution. One arena
/// per worker thread — it is deliberately not shared.
#[derive(Default)]
pub struct ScenarioArena {
    entries: Vec<(ArenaKey, ArenaEntry)>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct ArenaKey {
    workload: String,
    workload_params: Vec<(String, String)>,
    overrides: Vec<(String, String)>,
    replica_hosts: Vec<usize>,
    hosts: usize,
}

struct ArenaEntry {
    /// Post-override config; `seed` holds whatever scenario populated the
    /// entry and is re-patched per run unless `seed_overridden`.
    cfg: CloudConfig,
    /// Whether the overrides pin `seed` explicitly (then it must *not* be
    /// re-patched — an explicit override wins over sharding).
    seed_overridden: bool,
    replica_hosts: Vec<usize>,
    hosts: usize,
    resolved_config: Vec<(String, String)>,
    resolved_params: Vec<(String, String)>,
    params: WorkloadParams,
    workload: Arc<dyn Workload>,
}

impl ScenarioArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scenarios served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Scenarios resolved from scratch (distinct shapes seen).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resolves `s` through the cache.
    fn prepare(&mut self, s: &Scenario) -> Result<&ArenaEntry, String> {
        let hit = self.entries.iter().position(|(k, _)| {
            // Linear scan: a worker sees a handful of shapes, and the
            // common case (perf passes) has exactly one.
            k.hosts == s.hosts
                && k.workload == s.workload
                && k.workload_params == s.workload_params
                && k.overrides == s.overrides
                && k.replica_hosts == s.replica_hosts
        });
        if let Some(i) = hit {
            self.hits += 1;
            return Ok(&self.entries[i].1);
        }
        let (cfg, replica_hosts, hosts) = s.resolve()?;
        let workload = registry::require(&s.workload)?;
        let params = s.params();
        params.validate(&s.workload, workload.params())?;
        let resolved_params = params.resolved(workload.params());
        let resolved_config = cfg
            .resolved()
            .into_iter()
            .filter(|(key, _)| key != "seed")
            .collect();
        let key = ArenaKey {
            workload: s.workload.clone(),
            workload_params: s.workload_params.clone(),
            overrides: s.overrides.clone(),
            replica_hosts: s.replica_hosts.clone(),
            hosts: s.hosts,
        };
        let entry = ArenaEntry {
            cfg,
            seed_overridden: s.overrides.iter().any(|(k, _)| k == "seed"),
            replica_hosts,
            hosts,
            resolved_config,
            resolved_params,
            params,
            workload,
        };
        self.misses += 1;
        self.entries.push((key, entry));
        Ok(&self.entries.last().expect("just pushed").1)
    }
}

/// What one scenario measured — plain data, deterministic per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// The grid cell (aggregation key).
    pub cell: String,
    /// Cell coordinates.
    pub cell_params: Vec<(String, String)>,
    /// The workload that ran.
    pub workload: String,
    /// The defense arm it ran under (a `vmm::defense` registry key).
    pub defense: String,
    /// Every [`CloudConfig`] knob with its effective value (schema order,
    /// `seed` omitted — see [`ScenarioResult::seed`]). With
    /// `resolved_params` this makes the run reproducible from its report
    /// alone.
    pub resolved_config: Vec<(String, String)>,
    /// Every declared workload parameter with its effective value
    /// (schema order).
    pub resolved_params: Vec<(String, String)>,
    /// The seed that produced this run.
    pub seed: u64,
    /// The workload's latency-like samples, ms.
    pub samples_ms: Vec<f64>,
    /// Completed operations.
    pub completed: u64,
    /// Workload-specific side measurements (summed during aggregation).
    pub extra: Vec<(String, f64)>,
    /// Whether every client finished inside the time budget.
    pub clients_done: bool,
    /// Simulated time at which clients finished (or the budget ran out).
    pub finished_ms: f64,
    /// Events the engine executed (a determinism fingerprint).
    pub events_executed: u64,
    /// Replica count of the workload VM (1 for single-host arms).
    pub replicas: u64,
    /// Cloud counters plus summed per-slot counters.
    pub counters: Vec<(String, u64)>,
}

impl ScenarioResult {
    /// One counter by name (0 if never recorded). Slot counters are sums
    /// over all replicas; divide by [`ScenarioResult::replicas`] for a
    /// per-replica figure.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// One workload extra by name (0 if the workload never reported it).
    pub fn extra(&self, name: &str) -> f64 {
        self.extra
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::new("web-http", seed);
        s.workload_params = vec![
            ("bytes".into(), "20000".into()),
            ("downloads".into(), "2".into()),
        ];
        s.overrides = vec![
            ("broadcast_band".into(), "off".into()),
            ("disk".into(), "ssd".into()),
        ];
        s
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let a = quick_scenario(3).run().unwrap();
        let b = quick_scenario(3).run().unwrap();
        let c = quick_scenario(4).run().unwrap();
        assert_eq!(a, b, "same seed, same result");
        assert!(a.clients_done);
        assert_eq!(a.completed, 2);
        assert_ne!(
            a.samples_ms, c.samples_ms,
            "different seed should perturb measured latencies"
        );
        assert!(a.counters.iter().any(|(k, v)| k == "net_irq" && *v > 0));
    }

    #[test]
    fn bad_override_and_workload_surface_as_errors() {
        let mut s = Scenario::new("web-http", 1);
        s.overrides = vec![("no_such_key".into(), "1".into())];
        assert!(s.run().is_err());
        let s2 = Scenario::new("no-such-workload", 1);
        assert!(s2.run().is_err());
    }

    #[test]
    fn results_embed_resolved_config_and_params() {
        let r = quick_scenario(3).run().unwrap();
        assert_eq!(r.workload, "web-http");
        assert_eq!(r.defense, "stopwatch");
        let cfg: std::collections::BTreeMap<&str, &str> = r
            .resolved_config
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        assert_eq!(cfg.get("disk"), Some(&"ssd"), "override recorded");
        assert_eq!(cfg.get("broadcast_band"), Some(&"off"));
        assert_eq!(cfg.get("delta_n_ms"), Some(&"10"), "default recorded");
        assert!(!cfg.contains_key("seed"), "seed reported per shard instead");
        assert_eq!(
            r.resolved_params,
            vec![
                ("bytes".to_string(), "20000".to_string()),
                ("downloads".to_string(), "2".to_string()),
                ("file_id".to_string(), "1".to_string()),
            ],
            "explicit values overlaid on schema defaults, schema order"
        );
    }

    #[test]
    fn hosts_grow_to_fit_placement() {
        let mut s = Scenario::new("idle", 1);
        s.replica_hosts = vec![0, 2, 4];
        s.duration = SimDuration::from_millis(50);
        let r = s.run().unwrap();
        assert!(r.clients_done, "no clients means trivially done");
    }

    #[test]
    fn explicit_seed_override_beats_shard_seed() {
        let mut a = quick_scenario(3);
        a.overrides.push(("seed".into(), "99".into()));
        let mut b = quick_scenario(4); // different shard seed...
        b.overrides.push(("seed".into(), "99".into())); // ...same override
        let ra = a.run().unwrap();
        let rb = b.run().unwrap();
        assert_eq!(
            ra.samples_ms, rb.samples_ms,
            "seed override must win over sharding"
        );
    }

    #[test]
    fn arena_runs_are_bit_identical_to_fresh_runs() {
        let mut arena = ScenarioArena::new();
        let mut phases = Phases::default();
        let a3 = quick_scenario(3)
            .run_phased_in(&mut arena, &mut phases)
            .unwrap();
        let a4 = quick_scenario(4)
            .run_phased_in(&mut arena, &mut phases)
            .unwrap();
        assert_eq!(arena.misses(), 1, "one shape resolved once");
        assert_eq!(arena.hits(), 1, "second seed shard served from cache");
        assert_eq!(a3, quick_scenario(3).run().unwrap());
        assert_eq!(a4, quick_scenario(4).run().unwrap());
    }

    #[test]
    fn arena_respects_an_explicit_seed_override() {
        let mut arena = ScenarioArena::new();
        let mut phases = Phases::default();
        let mut a = quick_scenario(3);
        a.overrides.push(("seed".into(), "99".into()));
        let mut b = quick_scenario(4); // different shard seed...
        b.overrides.push(("seed".into(), "99".into())); // ...same override
        let ra = a.run_phased_in(&mut arena, &mut phases).unwrap();
        let rb = b.run_phased_in(&mut arena, &mut phases).unwrap();
        assert_eq!(arena.hits(), 1, "shapes match despite differing shards");
        assert_eq!(
            ra.samples_ms, rb.samples_ms,
            "cached seed override must still win over sharding"
        );
    }

    #[test]
    fn arena_keeps_distinct_shapes_apart() {
        let mut arena = ScenarioArena::new();
        let mut phases = Phases::default();
        let plain = quick_scenario(3);
        let mut rotated = quick_scenario(3);
        rotated.overrides.retain(|(k, _)| k != "disk");
        let r_plain = plain.run_phased_in(&mut arena, &mut phases).unwrap();
        let r_rot = rotated.run_phased_in(&mut arena, &mut phases).unwrap();
        assert_eq!(arena.misses(), 2, "different overrides, different entries");
        assert_ne!(r_plain.resolved_config, r_rot.resolved_config);
        // A bad shape still fails cleanly through the arena.
        let mut bad = quick_scenario(3);
        bad.overrides.push(("no_such_key".into(), "1".into()));
        assert!(bad.run_phased_in(&mut arena, &mut phases).is_err());
    }

    #[test]
    fn replicas_override_widens_default_placement() {
        let mut s = Scenario::new("idle", 1);
        s.overrides = vec![("replicas".into(), "5".into())];
        s.duration = SimDuration::from_millis(50);
        let (sim, wl) = s.build().unwrap();
        assert_eq!(sim.cloud.vm_replicas(wl.vm()).len(), 5);
    }
}
