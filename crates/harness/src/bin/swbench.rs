//! `swbench` — the sweep driver of the StopWatch reproduction.
//!
//! ```text
//! swbench list
//!     Print the named sweep presets.
//!
//! swbench run <preset> [--quick] [--threads N] [--out FILE] [--baseline CELL]
//!     Run a named sweep on all cores, print the cell table, write the
//!     JSON aggregate (default: results/sweep_<preset>.json).
//!
//! swbench sweep --workload NAME [--axis KEY=V1,V2,...]... [options]
//!     Run a free-form cartesian sweep.
//!     Axis keys: cfg.<key> (CloudConfig override), workload, anything
//!     else is a workload parameter. The defense arm is the `defense`
//!     config knob: sweep it with `--axis cfg.defense=...` or pin it
//!     with `--set defense=NAME`.
//!     Options:
//!       --seeds N          seed shards per cell (default 4, base seed 42)
//!       --seed-base N      first seed (default 42)
//!       --param K=V        base workload parameter
//!       --set K=V          base CloudConfig override
//!       --duration-s N     simulated-time budget per scenario (default 60)
//!       --threads N        worker threads (default: all cores)
//!       --baseline CELL    leakage baseline cell (default: first cell)
//!       --out FILE         JSON output path
//!
//! swbench perf [<bench>|--all] [--quick] [--scalar] [--repeats N]
//!              [--warmup N] [--threads N] [--out FILE]
//!              [--baseline FILE | --baseline-dir DIR]
//!              [--max-regress FRAC]
//!     Run a named throughput benchmark (no name: list them): warmup
//!     passes, then timed repeats whose median wall time yields
//!     events/sec and packets/sec. Writes a schema-versioned
//!     BENCH_<bench>.json (default: BENCH_<bench>.json in the working
//!     directory). With --baseline, exits nonzero when events/sec fell
//!     more than --max-regress (default 0.30) below the baseline file's —
//!     the CI perf gate. --scalar runs the pre-batching reference paths,
//!     for measuring the batching speedup.
//!     --all runs every registered bench in one pass and writes the
//!     consolidated BENCH_trajectory.json (--out overrides its path); with
//!     --baseline-dir every bench is gated against the directory's
//!     BENCH_<bench>-baseline.json and a missing baseline is an error, so
//!     a newly added bench cannot silently skip the gate.
//!
//! swbench profile [<bench>] [--quick] [--scalar] [--threads N] [--out FILE]
//!     Run a named perf bench once with the phase timers on and write the
//!     schema-versioned PROFILE_*.json breakdown (setup/run/aggregate wall
//!     per pass). Without a bench name, profiles every registered bench
//!     into one consolidated document (default: PROFILE_benches.json).
//!
//! swbench workloads
//!     Print the workload registry keys.
//!
//! swbench describe [workload]
//!     Print the full typed knob/parameter catalogue: every CloudConfig
//!     knob (key, type, default, doc), every registered defense arm with
//!     the knobs it reads, and every registered workload with its typed
//!     parameters — or just one workload's schema.
//!
//! swbench help | --help | -h
//!     Print the command summary, including the flag fine print (e.g.
//!     `--threads 0` is rejected — omit the flag to use all cores).
//! ```

use harness::prelude::*;
use simkit::time::SimDuration;
use std::path::PathBuf;
use std::process::ExitCode;
use stopwatch_core::config::CloudConfig;
use workloads::registry::{self, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for p in PRESETS {
                println!("{:<10} {}", p.name, p.about);
            }
            ExitCode::SUCCESS
        }
        Some("workloads") => {
            for name in registry::workload_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Some("describe") => match describe(args.get(1).map(String::as_str)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("run") => match parse_run(&args[1..]).and_then(run_spec) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("sweep") => match parse_sweep(&args[1..]).and_then(run_spec) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("perf") => match parse_perf(&args[1..]).and_then(run_perf_bench) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("profile") => match parse_profile(&args[1..]).and_then(run_profile_cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("help") | Some("--help") | Some("-h") => {
            print!("{}", help_text());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: swbench list | workloads | describe [workload] | \
                 run <preset> [opts] | sweep --workload NAME [opts] | \
                 perf [bench] [opts] | profile [bench] [opts] | help"
            );
            ExitCode::FAILURE
        }
    }
}

/// The `swbench help` text: one block per command plus the flag fine
/// print that doesn't fit a usage one-liner.
fn help_text() -> String {
    "\
swbench — sweep driver of the StopWatch reproduction

  swbench list                     named sweep presets
  swbench workloads                workload registry keys
  swbench describe [workload]      typed knob/parameter catalogue
  swbench run <preset> [opts]      run a named sweep, write its JSON aggregate
  swbench sweep --workload NAME [--axis K=V1,V2]... [opts]
                                   free-form cartesian sweep
  swbench perf [bench|--all] [--quick] [--scalar] [--repeats N] [--warmup N]
               [--profile] [--baseline FILE | --baseline-dir DIR]
               [--max-regress FRAC] [opts]
                                   named throughput benchmarks + CI gate;
                                   --profile also writes the PROFILE_*.json
                                   phase breakdown of the timed passes
  swbench profile [bench] [--quick] [--scalar] [opts]
                                   phase-timer breakdown (setup/run/aggregate)
                                   of one bench, or of every registered bench

common options
  --threads N     worker threads. N must be >= 1: an explicit --threads 0
                  is rejected with an error (it is not \"all cores\" — omit
                  the flag entirely to use one worker per available core).
  --quick         smoke-test scenario shapes instead of the full grids
  --out FILE      output path for the JSON artifact
"
    .to_string()
}

/// Prints the typed knob/parameter catalogue (everything, or one
/// workload's schema).
fn describe(which: Option<&str>) -> Result<(), String> {
    match which {
        Some(name) => {
            let w = registry::require(name)?;
            print_workload(w.as_ref());
        }
        None => {
            println!("CloudConfig knobs (sweep axis `cfg.<key>`, `--set KEY=VALUE`):");
            for knob in CloudConfig::knobs() {
                println!(
                    "  {:<16} {:<14} {:>12}  {}",
                    knob.key,
                    knob.ty.to_string(),
                    knob.default_value(),
                    knob.doc
                );
            }
            println!();
            println!("Defense arms (`cfg.defense` axis, `--set defense=NAME`):");
            // Alphabetical for the same reason as the workloads below.
            let mut arms = vmm::defense::ARMS.to_vec();
            arms.sort_by_key(|a| a.name());
            for arm in arms {
                println!("{:<18} {}", arm.name(), arm.about());
                let knobs = arm.knobs();
                println!(
                    "  knobs: {}",
                    if knobs.is_empty() {
                        "(none)".to_string()
                    } else {
                        knobs.join(", ")
                    }
                );
            }
            println!();
            println!(
                "Workloads (`--workload NAME`, `workload` axis; parameters are axes/--param):"
            );
            // Alphabetical, not registration order: the catalogue stays
            // stable no matter what order workloads were linked in.
            let mut listed = registry::workloads();
            listed.sort_by(|a, b| a.name().cmp(b.name()));
            for w in listed {
                print_workload(w.as_ref());
            }
        }
    }
    Ok(())
}

fn print_workload(w: &dyn Workload) {
    println!("{:<18} {}", w.name(), w.about());
    // Which of the VMM's timing channels (replica-median agreement paths)
    // this workload's guests exercise.
    let channels: Vec<&str> = w.channels().iter().map(|k| k.name()).collect();
    println!(
        "  channels: {}",
        if channels.is_empty() {
            "(none)".to_string()
        } else {
            channels.join(", ")
        }
    );
    if w.params().is_empty() {
        println!("  (no parameters)");
    }
    for p in w.params() {
        println!(
            "  {:<16} {:<14} {:>12}  {}",
            p.key,
            p.ty.to_string(),
            p.default,
            p.doc
        );
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("swbench: {message}");
    ExitCode::FAILURE
}

/// Everything a sweep invocation needs.
struct Invocation {
    spec: SweepSpec,
    threads: usize,
    baseline: Option<String>,
    out: Option<PathBuf>,
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses a `--threads` value. `0` used to reach the work-stealing runner
/// and is rejected here with the fix spelled out instead of a panic or a
/// silent reinterpretation.
fn parse_threads(v: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("bad --threads value {v:?}"))?;
    if n == 0 {
        return Err(
            "--threads 0 is not a thread count; pass --threads N with N >= 1, \
             or omit the flag to use all cores"
                .to_string(),
        );
    }
    Ok(n)
}

/// Splits `KEY=VALUE` on the **first** `=` only, so values containing
/// `=` survive intact.
fn parse_kv(raw: &str, flag: &str) -> Result<(String, String), String> {
    raw.split_once('=')
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .ok_or_else(|| format!("{flag} wants KEY=VALUE, got {raw:?}"))
}

/// Flags shared by `run` and `sweep`.
struct CommonFlags {
    threads: usize,
    baseline: Option<String>,
    out: Option<PathBuf>,
    quick: bool,
}

fn parse_common(args: &[String], i: &mut usize, flags: &mut CommonFlags) -> Result<bool, String> {
    match args[*i].as_str() {
        "--threads" => {
            let v = take_value(args, i, "--threads")?;
            flags.threads = parse_threads(&v)?;
        }
        "--baseline" => flags.baseline = Some(take_value(args, i, "--baseline")?),
        "--out" => flags.out = Some(PathBuf::from(take_value(args, i, "--out")?)),
        "--quick" => flags.quick = true,
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_run(args: &[String]) -> Result<Invocation, String> {
    let mut name = None;
    let mut flags = CommonFlags {
        threads: 0,
        baseline: None,
        out: None,
        quick: false,
    };
    let mut i = 0;
    while i < args.len() {
        if parse_common(args, &mut i, &mut flags)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            preset_name if name.is_none() => name = Some(preset_name.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
        i += 1;
    }
    let name = name.ok_or_else(|| "run needs a preset name (see `swbench list`)".to_string())?;
    let preset =
        preset(&name).ok_or_else(|| format!("unknown preset {name:?} (see `swbench list`)"))?;
    Ok(Invocation {
        spec: preset.spec(flags.quick),
        threads: flags.threads,
        baseline: flags.baseline,
        out: flags.out,
    })
}

fn parse_sweep(args: &[String]) -> Result<Invocation, String> {
    let mut workload = None;
    let mut axes: Vec<Axis> = Vec::new();
    let mut params = Vec::new();
    let mut overrides = Vec::new();
    let mut seeds = 4usize;
    let mut seed_base = 42u64;
    let mut duration_s = 60u64;
    let mut flags = CommonFlags {
        threads: 0,
        baseline: None,
        out: None,
        quick: false,
    };
    let mut i = 0;
    while i < args.len() {
        if parse_common(args, &mut i, &mut flags)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--workload" => workload = Some(take_value(args, &mut i, "--workload")?),
            "--axis" => {
                let (key, values) = parse_kv(&take_value(args, &mut i, "--axis")?, "--axis")?;
                if axes.iter().any(|a| a.key == key) {
                    return Err(format!("duplicate --axis key {key:?}"));
                }
                axes.push(Axis {
                    key,
                    values: values.split(',').map(str::to_string).collect(),
                });
            }
            "--param" => params.push(parse_kv(&take_value(args, &mut i, "--param")?, "--param")?),
            "--set" => overrides.push(parse_kv(&take_value(args, &mut i, "--set")?, "--set")?),
            "--seeds" => {
                let v = take_value(args, &mut i, "--seeds")?;
                seeds = v.parse().map_err(|_| format!("bad --seeds value {v:?}"))?;
            }
            "--seed-base" => {
                let v = take_value(args, &mut i, "--seed-base")?;
                seed_base = v
                    .parse()
                    .map_err(|_| format!("bad --seed-base value {v:?}"))?;
            }
            "--duration-s" => {
                let v = take_value(args, &mut i, "--duration-s")?;
                duration_s = v
                    .parse()
                    .map_err(|_| format!("bad --duration-s value {v:?}"))?;
            }
            flag => return Err(format!("unknown flag {flag:?}")),
        }
        i += 1;
    }
    let workload = workload.ok_or_else(|| "sweep needs --workload".to_string())?;
    let mut spec = SweepSpec::new("custom", &workload).seed_shards(seed_base, seeds.max(1));
    spec.axes = axes;
    spec.base_params = params;
    spec.base_overrides = overrides;
    spec.duration = SimDuration::from_secs(duration_s);
    Ok(Invocation {
        spec,
        threads: flags.threads,
        baseline: flags.baseline,
        out: flags.out,
    })
}

/// Everything a `swbench perf` invocation needs.
#[derive(Debug)]
struct PerfInvocation {
    bench: Option<String>,
    all: bool,
    quick: bool,
    scalar: bool,
    warmup: Option<usize>,
    repeats: Option<usize>,
    threads: usize,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    baseline_dir: Option<PathBuf>,
    max_regress: f64,
    profile: bool,
}

fn parse_perf(args: &[String]) -> Result<PerfInvocation, String> {
    let mut inv = PerfInvocation {
        bench: None,
        all: false,
        quick: false,
        scalar: false,
        warmup: None,
        repeats: None,
        threads: 0,
        out: None,
        baseline: None,
        baseline_dir: None,
        max_regress: 0.30,
        profile: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => inv.all = true,
            "--quick" => inv.quick = true,
            "--scalar" => inv.scalar = true,
            "--profile" => inv.profile = true,
            "--warmup" => {
                let v = take_value(args, &mut i, "--warmup")?;
                inv.warmup = Some(v.parse().map_err(|_| format!("bad --warmup value {v:?}"))?);
            }
            "--repeats" => {
                let v = take_value(args, &mut i, "--repeats")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --repeats value {v:?}"))?;
                if n == 0 {
                    return Err("--repeats must be >= 1 (the median needs a sample)".to_string());
                }
                inv.repeats = Some(n);
            }
            "--threads" => inv.threads = parse_threads(&take_value(args, &mut i, "--threads")?)?,
            "--out" => inv.out = Some(PathBuf::from(take_value(args, &mut i, "--out")?)),
            "--baseline" => {
                inv.baseline = Some(PathBuf::from(take_value(args, &mut i, "--baseline")?))
            }
            "--baseline-dir" => {
                inv.baseline_dir = Some(PathBuf::from(take_value(args, &mut i, "--baseline-dir")?))
            }
            "--max-regress" => {
                let v = take_value(args, &mut i, "--max-regress")?;
                let f: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --max-regress value {v:?}"))?;
                if !(0.0..1.0).contains(&f) {
                    return Err(format!("--max-regress wants a fraction in [0, 1), got {v}"));
                }
                inv.max_regress = f;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            name if inv.bench.is_none() => inv.bench = Some(name.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
        i += 1;
    }
    if inv.all && inv.bench.is_some() {
        return Err("--all runs every bench; drop the bench name".to_string());
    }
    if inv.all && inv.baseline.is_some() {
        return Err("--all gates via --baseline-dir, not a single --baseline file".to_string());
    }
    if inv.baseline_dir.is_some() && !inv.all {
        return Err(
            "--baseline-dir only applies to --all (use --baseline for one bench)".to_string(),
        );
    }
    Ok(inv)
}

fn run_perf_bench(inv: PerfInvocation) -> Result<(), String> {
    if inv.all {
        return run_perf_all(inv);
    }
    let Some(bench) = inv.bench else {
        for b in PERF_BENCHES {
            println!("{:<14} {}", b.name, b.about);
        }
        return Ok(());
    };
    let opts = PerfOptions {
        quick: inv.quick,
        warmup: inv.warmup.unwrap_or(1),
        repeats: inv.repeats.unwrap_or(if inv.quick { 3 } else { 5 }),
        threads: inv.threads,
        scalar: inv.scalar,
    };
    eprintln!(
        "perf {bench:?}: {} mode, {} warmup + {} timed passes",
        if opts.quick { "quick" } else { "full" },
        opts.warmup,
        opts.repeats
    );
    let report = run_perf(&bench, &opts)?;
    println!("{}", report.summary());
    let out = inv
        .out
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{bench}.json")));
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
    }
    std::fs::write(&out, report.to_json()).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("perf report: {}", out.display());
    if inv.profile {
        let path = out.with_file_name(format!("PROFILE_{bench}.json"));
        let profile = ProfileReport::from_perf(&report);
        println!("{}", profile.summary());
        std::fs::write(&path, profile.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("phase profile: {}", path.display());
    }
    if let Some(baseline_path) = inv.baseline {
        let baseline = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path:?}: {e}"))?;
        let verdict = check_against_baseline(&report, &baseline, inv.max_regress)?;
        println!("{verdict}");
    }
    Ok(())
}

/// The consolidated perf pass: every registered bench in one invocation,
/// each gated against `<baseline-dir>/BENCH_<bench>-baseline.json`, with
/// one schema-versioned `BENCH_trajectory.json` artifact at the end. All
/// benches run (and write their reports) even when an early one regresses
/// — the combined verdict decides the exit code, so one artifact always
/// shows the whole trajectory.
fn run_perf_all(inv: PerfInvocation) -> Result<(), String> {
    let opts = PerfOptions {
        quick: inv.quick,
        warmup: inv.warmup.unwrap_or(1),
        repeats: inv.repeats.unwrap_or(if inv.quick { 3 } else { 5 }),
        threads: inv.threads,
        scalar: inv.scalar,
    };
    // Baselines are resolved up front: with a baseline dir, every
    // registered bench must have one checked in — a bench added without a
    // baseline fails the gate loudly instead of silently skipping it.
    let mut baselines: Vec<Option<String>> = Vec::new();
    for b in PERF_BENCHES {
        match &inv.baseline_dir {
            None => baselines.push(None),
            Some(dir) => {
                let path = dir.join(baseline_file_name(b.name));
                let doc = std::fs::read_to_string(&path).map_err(|e| {
                    format!(
                        "bench {:?} has no usable baseline at {path:?}: {e} — every \
                         registered bench must check one in before the consolidated \
                         gate can run (refresh with `swbench perf {} --quick \
                         --threads 1 --out {path:?}`)",
                        b.name, b.name
                    )
                })?;
                baselines.push(Some(doc));
            }
        }
    }
    let mut trajectory = Trajectory::default();
    let mut profiles = ProfileSet::default();
    for (b, baseline) in PERF_BENCHES.iter().zip(baselines) {
        eprintln!(
            "perf {:?}: {} mode, {} warmup + {} timed passes",
            b.name,
            if opts.quick { "quick" } else { "full" },
            opts.warmup,
            opts.repeats
        );
        let report = run_perf(b.name, &opts)?;
        println!("{}", report.summary());
        let out = PathBuf::from(format!("BENCH_{}.json", b.name));
        std::fs::write(&out, report.to_json()).map_err(|e| format!("writing {out:?}: {e}"))?;
        let verdict = baseline
            .as_deref()
            .map(|doc| check_against_baseline(&report, doc, inv.max_regress));
        match &verdict {
            Some(Ok(line)) => println!("{line}"),
            Some(Err(line)) => println!("FAIL {line}"),
            None => {}
        }
        if inv.profile {
            profiles.entries.push(ProfileReport::from_perf(&report));
        }
        trajectory.entries.push(TrajectoryEntry { report, verdict });
    }
    if inv.profile {
        let path = PathBuf::from("PROFILE_benches.json");
        std::fs::write(&path, profiles.to_json()).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("phase profiles: {}", path.display());
    }
    let out = inv
        .out
        .unwrap_or_else(|| PathBuf::from("BENCH_trajectory.json"));
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
    }
    std::fs::write(&out, trajectory.to_json()).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("trajectory report: {}", out.display());
    let failures = trajectory.failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf gate failed for {} bench(es): {}",
            failures.len(),
            failures.join(", ")
        ))
    }
}

/// Everything a `swbench profile` invocation needs.
#[derive(Debug)]
struct ProfileInvocation {
    bench: Option<String>,
    quick: bool,
    scalar: bool,
    threads: usize,
    out: Option<PathBuf>,
}

fn parse_profile(args: &[String]) -> Result<ProfileInvocation, String> {
    let mut inv = ProfileInvocation {
        bench: None,
        quick: false,
        scalar: false,
        threads: 0,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => inv.quick = true,
            "--scalar" => inv.scalar = true,
            "--threads" => inv.threads = parse_threads(&take_value(args, &mut i, "--threads")?)?,
            "--out" => inv.out = Some(PathBuf::from(take_value(args, &mut i, "--out")?)),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            name if inv.bench.is_none() => inv.bench = Some(name.to_string()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
        i += 1;
    }
    Ok(inv)
}

/// `swbench profile`: one phase-attributed pass per bench. With a bench
/// name, writes that bench's `PROFILE_<bench>.json`; without one, covers
/// every registered bench in one consolidated document.
fn run_profile_cmd(inv: ProfileInvocation) -> Result<(), String> {
    let opts = ProfileOptions {
        quick: inv.quick,
        threads: inv.threads,
        scalar: inv.scalar,
    };
    let (doc, default_out) = match &inv.bench {
        Some(bench) => {
            let report = run_profile(bench, &opts)?;
            println!("{}", report.summary());
            (report.to_json(), format!("PROFILE_{bench}.json"))
        }
        None => {
            let mut set = ProfileSet::default();
            for b in PERF_BENCHES {
                let report = run_profile(b.name, &opts)?;
                println!("{}", report.summary());
                set.entries.push(report);
            }
            (set.to_json(), "PROFILE_benches.json".to_string())
        }
    };
    let out = inv.out.unwrap_or_else(|| PathBuf::from(default_out));
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
    }
    std::fs::write(&out, doc).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("phase profile: {}", out.display());
    Ok(())
}

fn run_spec(inv: Invocation) -> Result<(), String> {
    let scenarios = inv.spec.scenarios()?;
    let opts = RunnerOptions {
        threads: inv.threads,
        progress: true,
    };
    eprintln!(
        "sweep {:?}: {} scenarios on {} threads",
        inv.spec.name,
        scenarios.len(),
        opts.effective_threads().min(scenarios.len()).max(1)
    );
    let started = std::time::Instant::now();
    let outcomes = run_scenarios(&scenarios, &opts);
    let wall = started.elapsed();
    let report = SweepReport::from_outcomes(&inv.spec.name, &outcomes, inv.baseline.as_deref());
    print!("{}", report.to_table());
    eprintln!(
        "{} scenarios in {:.2}s wall ({:.2} scenarios/s)",
        scenarios.len(),
        wall.as_secs_f64(),
        scenarios.len() as f64 / wall.as_secs_f64().max(1e-9)
    );
    let out = inv
        .out
        .unwrap_or_else(|| PathBuf::from(format!("results/sweep_{}.json", inv.spec.name)));
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {parent:?}: {e}"))?;
    }
    std::fs::write(&out, report.to_json()).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("JSON aggregate: {}", out.display());
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} scenario(s) failed", report.failures.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn kv_splits_on_first_equals_only() {
        let (k, v) = parse_kv("pacing=1:2", "--set").unwrap();
        assert_eq!((k.as_str(), v.as_str()), ("pacing", "1:2"));
        let (k, v) = parse_kv("note=a=b=c", "--param").unwrap();
        assert_eq!((k.as_str(), v.as_str()), ("note", "a=b=c"));
        assert!(parse_kv("no-equals", "--axis").is_err());
    }

    #[test]
    fn duplicate_axis_keys_are_rejected_at_parse_time() {
        let err = parse_sweep(&argv(&[
            "--workload",
            "web-http",
            "--axis",
            "bytes=1,2",
            "--axis",
            "bytes=3",
        ]))
        .err()
        .expect("duplicate axis");
        assert!(err.contains("duplicate --axis"), "{err}");
        assert!(err.contains("\"bytes\""), "{err}");
    }

    #[test]
    fn axis_values_containing_equals_survive() {
        let inv = parse_sweep(&argv(&[
            "--workload",
            "web-http",
            "--axis",
            "bytes=1000,2000",
            "--param",
            "downloads=2",
        ]))
        .unwrap();
        assert_eq!(inv.spec.axes.len(), 1);
        assert_eq!(inv.spec.axes[0].values, vec!["1000", "2000"]);
        assert_eq!(
            inv.spec.base_params,
            vec![("downloads".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn threads_zero_is_rejected_with_the_fix_spelled_out() {
        for parse in [
            parse_run(&argv(&["delta-n", "--threads", "0"])).err(),
            parse_sweep(&argv(&["--workload", "web-http", "--threads", "0"])).err(),
            parse_perf(&argv(&["delta-n", "--threads", "0"])).err(),
        ] {
            let err = parse.expect("--threads 0 must be rejected");
            assert!(err.contains("--threads 0"), "{err}");
            assert!(err.contains("omit the flag"), "{err}");
        }
        assert!(parse_run(&argv(&["delta-n", "--threads", "2"])).is_ok());
    }

    #[test]
    fn perf_flags_parse_with_defaults() {
        let inv = parse_perf(&argv(&["delta-n", "--quick", "--scalar"])).unwrap();
        assert_eq!(inv.bench.as_deref(), Some("delta-n"));
        assert!(inv.quick && inv.scalar);
        assert_eq!(inv.threads, 0, "default: all cores");
        assert_eq!(inv.max_regress, 0.30, "CI gate tolerance default");
        assert!(inv.warmup.is_none() && inv.repeats.is_none());

        let inv = parse_perf(&argv(&[
            "packet-storm",
            "--repeats",
            "7",
            "--warmup",
            "2",
            "--baseline",
            "BENCH_delta-n-baseline.json",
            "--max-regress",
            "0.5",
        ]))
        .unwrap();
        assert_eq!(inv.repeats, Some(7));
        assert_eq!(inv.warmup, Some(2));
        assert_eq!(inv.max_regress, 0.5);
        assert!(inv.baseline.is_some());

        assert!(parse_perf(&argv(&["x", "--repeats", "0"])).is_err());
        assert!(parse_perf(&argv(&["x", "--max-regress", "1.5"])).is_err());
        assert!(parse_perf(&argv(&["x", "--bogus"])).is_err());
    }

    #[test]
    fn perf_all_parses_and_rejects_conflicts() {
        let inv = parse_perf(&argv(&["--all", "--quick", "--baseline-dir", "."])).unwrap();
        assert!(inv.all && inv.bench.is_none());
        assert_eq!(inv.baseline_dir.as_deref(), Some(std::path::Path::new(".")));

        // Report-only (no gate) is the nightly shape.
        let inv = parse_perf(&argv(&["--all"])).unwrap();
        assert!(inv.all && inv.baseline_dir.is_none());

        let err = parse_perf(&argv(&["delta-n", "--all"])).unwrap_err();
        assert!(err.contains("drop the bench name"), "{err}");
        let err = parse_perf(&argv(&["--all", "--baseline", "B.json"])).unwrap_err();
        assert!(err.contains("--baseline-dir"), "{err}");
        let err = parse_perf(&argv(&["delta-n", "--baseline-dir", "."])).unwrap_err();
        assert!(err.contains("only applies to --all"), "{err}");
    }

    #[test]
    fn describe_covers_known_names_and_rejects_typos() {
        assert!(describe(None).is_ok());
        assert!(describe(Some("web-http")).is_ok());
        let err = describe(Some("web-htp")).err().expect("unknown workload");
        assert!(err.contains("did you mean \"web-http\""), "{err}");
    }
}
