//! # harness — parallel scenario-sweep orchestration
//!
//! The StopWatch paper's claims are parameter sweeps: overhead and leakage
//! as functions of Δn/Δd padding, replica count, host jitter, and workload
//! mix. This crate turns the reproduction's one-cloud-at-a-time simulator
//! into a sweep engine that saturates every core:
//!
//! * [`scenario`] — a declarative [`Scenario`](scenario::Scenario): one
//!   isolated, deterministic cloud run (workload, placement, config
//!   overrides, seed, duration);
//! * [`sweep`] — [`SweepSpec`](sweep::SweepSpec): cartesian axis grids ×
//!   seed shards expanding to a flat scenario list, validated against the
//!   typed knob/parameter schemas (`CloudConfig::knobs`,
//!   `Workload::params`) before anything runs;
//! * [`runner`] — a work-stealing std-thread pool whose output is
//!   independent of thread count;
//! * [`aggregate`] — per-cell percentile summaries, KS/χ² leakage
//!   verdicts via [`timestats`], and deterministic JSON reports;
//! * [`presets`] — named paper-figure sweeps for the `swbench` binary;
//! * [`perf`] — named throughput benchmarks (`swbench perf`) with
//!   warmup/repeat-median methodology, `BENCH_<name>.json` artifacts, and
//!   the CI regression gate;
//! * [`json`] — the dependency-free deterministic JSON writer.
//!
//! # Examples
//!
//! A 4-scenario Δn sweep on two threads, aggregated to JSON:
//!
//! ```
//! use harness::prelude::*;
//!
//! let mut spec = SweepSpec::new("demo", "web-http")
//!     .axis("cfg.delta_n_ms", &[2u64, 10])
//!     .seed_shards(1, 2);
//! spec.base_params = vec![
//!     ("bytes".into(), "20000".into()),
//!     ("downloads".into(), "1".into()),
//! ];
//! spec.base_overrides = vec![("broadcast_band".into(), "off".into())];
//!
//! let scenarios = spec.scenarios().unwrap();
//! assert_eq!(scenarios.len(), 4);
//! let outcomes = run_scenarios(&scenarios, &RunnerOptions { threads: 2, progress: false });
//! let report = SweepReport::from_outcomes(&spec.name, &outcomes, None);
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.to_json().contains("\"sweep\": \"demo\""));
//! ```

pub mod aggregate;
pub mod json;
pub mod perf;
pub mod presets;
pub mod profile;
pub mod runner;
pub mod scenario;
pub mod sweep;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::aggregate::{CellAggregate, LeakageVerdict, SweepReport, REPORT_SCHEMA_VERSION};
    pub use crate::json::Json;
    pub use crate::perf::{
        baseline_file_name, check_against_baseline, perf_bench, run_perf, PerfOptions, PerfReport,
        Trajectory, TrajectoryEntry, BENCH_SCHEMA_VERSION, PERF_BENCHES, TRAJECTORY_SCHEMA_VERSION,
    };
    pub use crate::presets::{preset, PRESETS};
    pub use crate::profile::{
        run_profile, Phases, ProfileOptions, ProfileReport, ProfileSet, PROFILE_SCHEMA_VERSION,
    };
    pub use crate::runner::{run_scenarios, run_scenarios_profiled, RunOutcome, RunnerOptions};
    pub use crate::scenario::{Scenario, ScenarioArena, ScenarioResult};
    pub use crate::sweep::{Axis, SweepSpec};
}
