//! Merging scenario results into per-cell summaries and leakage verdicts.
//!
//! Every seed shard of a grid cell contributes its samples to one merged
//! distribution per cell; the report carries exact percentiles of that
//! distribution, the summed counters, and — per cell — a **leakage
//! verdict** against the sweep's baseline cell: the Kolmogorov–Smirnov
//! distance between the two observed timing distributions and the χ²
//! observation count an attacker would need to distinguish them at 95%
//! confidence (the paper's Figs. 1b/4b metric). Cells whose timing an
//! observer cannot tell apart from the baseline's leak nothing through
//! this channel.
//!
//! Aggregation is pure data-folding over the deterministic outcome list,
//! so a report is byte-identical for a given spec regardless of how many
//! runner threads produced the outcomes.

use crate::json::Json;
use crate::runner::RunOutcome;
use simkit::metrics::{Counters, Percentiles, Samples};
use timestats::detect::Detector;
use timestats::dist::Empirical;
use timestats::ks::ks_distance;

/// Version of the JSON report layout. Bumped whenever the report shape
/// changes; consumers should assert it before parsing.
pub const REPORT_SCHEMA_VERSION: u64 = 3;

/// Everything measured about one grid cell, merged over its seed shards.
#[derive(Debug, Clone)]
pub struct CellAggregate {
    /// The cell key (`"k=v,k2=v2"`).
    pub cell: String,
    /// Cell coordinates in axis order.
    pub params: Vec<(String, String)>,
    /// The workload that ran in this cell.
    pub workload: String,
    /// The defense arm of this cell (a `vmm::defense` registry key).
    pub defense: String,
    /// The seeds of the merged shards, in run order.
    pub seeds: Vec<u64>,
    /// The cell's fully-resolved [`CloudConfig`] knobs (`seed` omitted —
    /// see `seeds`). With `resolved_params` this makes every cell
    /// reproducible from the report alone.
    ///
    /// [`CloudConfig`]: stopwatch_core::config::CloudConfig
    pub resolved_config: Vec<(String, String)>,
    /// The cell's fully-resolved workload parameters.
    pub resolved_params: Vec<(String, String)>,
    /// Seed-shard runs merged into this cell.
    pub runs: u64,
    /// Runs whose clients did not finish inside the budget.
    pub timeouts: u64,
    /// Total completed operations.
    pub completed: u64,
    /// Total engine events (determinism fingerprint).
    pub events_executed: u64,
    /// Percentiles of the merged latency samples (ms).
    pub latency_ms: Percentiles,
    /// Summed counters.
    pub counters: Counters,
    /// Summed workload-specific side measurements.
    pub extra: Vec<(String, f64)>,
    /// The merged samples (kept for leakage analysis).
    pub samples: Samples,
    /// Cost of this cell's defense arm against its Baseline sibling —
    /// the cell at the same grid coordinates with `cfg.defense=baseline`.
    /// `None` for baseline cells and for sweeps without a defense axis.
    pub overhead: Option<CellOverhead>,
}

/// What a defense arm costs relative to the undefended run of the same
/// cell: throughput as a ratio and delivery-lag percentile deltas.
#[derive(Debug, Clone)]
pub struct CellOverhead {
    /// The Baseline sibling cell the comparison is against.
    pub vs_cell: String,
    /// Completed operations relative to the sibling (1.0 = no cost).
    pub throughput_ratio: f64,
    /// Median latency shift vs the sibling, ms (positive = slower).
    pub latency_p50_delta_ms: f64,
    /// Tail (p95) latency shift vs the sibling, ms.
    pub latency_p95_delta_ms: f64,
}

impl CellAggregate {
    /// One summed extra by name (0 when the workload never reported it).
    pub fn extra(&self, name: &str) -> f64 {
        self.extra
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }
}

/// A cell's distinguishability from the sweep's baseline cell.
#[derive(Debug, Clone)]
pub struct LeakageVerdict {
    /// The analyzed cell.
    pub cell: String,
    /// The baseline cell it is compared against.
    pub baseline: String,
    /// KS distance between the merged sample distributions.
    pub ks_distance: f64,
    /// χ² observations needed to distinguish at 95% confidence
    /// (`u64::MAX` = numerically indistinguishable).
    pub observations_needed_95: u64,
    /// Whether the attacker could have distinguished the two with the
    /// samples this sweep actually collected.
    pub distinguishable_at_95: bool,
}

/// A finished sweep: per-cell aggregates, leakage verdicts, failures.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Sweep name.
    pub name: String,
    /// Scenarios that ran.
    pub scenarios: u64,
    /// Per-cell aggregates, in grid order.
    pub cells: Vec<CellAggregate>,
    /// Per-cell leakage verdicts (cells after the baseline, in grid order).
    pub leakage: Vec<LeakageVerdict>,
    /// `(label, error)` for scenarios that failed to run.
    pub failures: Vec<(String, String)>,
}

impl SweepReport {
    /// Folds runner outcomes into a report. `baseline_cell` names the cell
    /// every leakage verdict compares against; `None` uses the first cell
    /// with samples (grid order — declare the null arm first).
    pub fn from_outcomes(
        name: &str,
        outcomes: &[RunOutcome],
        baseline_cell: Option<&str>,
    ) -> SweepReport {
        let mut cells: Vec<CellAggregate> = Vec::new();
        let mut failures = Vec::new();
        for outcome in outcomes {
            let result = match &outcome.result {
                Ok(r) => r,
                Err(e) => {
                    failures.push((outcome.label.clone(), e.clone()));
                    continue;
                }
            };
            let cell = match cells.iter_mut().find(|c| c.cell == result.cell) {
                Some(c) => c,
                None => {
                    cells.push(CellAggregate {
                        cell: result.cell.clone(),
                        params: result.cell_params.clone(),
                        workload: result.workload.clone(),
                        defense: result.defense.clone(),
                        seeds: Vec::new(),
                        resolved_config: result.resolved_config.clone(),
                        resolved_params: result.resolved_params.clone(),
                        runs: 0,
                        timeouts: 0,
                        completed: 0,
                        events_executed: 0,
                        latency_ms: Percentiles::default(),
                        counters: Counters::new(),
                        extra: Vec::new(),
                        samples: Samples::new(),
                        overhead: None,
                    });
                    cells.last_mut().expect("just pushed")
                }
            };
            cell.runs += 1;
            cell.seeds.push(result.seed);
            if !result.clients_done {
                cell.timeouts += 1;
            }
            cell.completed += result.completed;
            cell.events_executed += result.events_executed;
            cell.samples.extend(result.samples_ms.iter().copied());
            for (k, v) in &result.counters {
                cell.counters.add(k, *v);
            }
            for (k, v) in &result.extra {
                match cell.extra.iter_mut().find(|(name, _)| name == k) {
                    Some((_, sum)) => *sum += v,
                    None => cell.extra.push((k.clone(), *v)),
                }
            }
        }
        for cell in &mut cells {
            cell.latency_ms = cell.samples.percentiles();
        }
        let overheads: Vec<Option<CellOverhead>> =
            cells.iter().map(|c| cell_overhead(c, &cells)).collect();
        for (cell, overhead) in cells.iter_mut().zip(overheads) {
            cell.overhead = overhead;
        }

        if let Some(wanted) = baseline_cell {
            // A baseline typo must fail loudly, not silently drop the
            // whole leakage section.
            if !cells.iter().any(|c| c.cell == wanted) {
                let known: Vec<&str> = cells.iter().map(|c| c.cell.as_str()).collect();
                failures.push((
                    "baseline".to_string(),
                    format!("baseline cell {wanted:?} matches no cell (cells: {known:?})"),
                ));
            }
        }
        let leakage = leakage_verdicts(&cells, baseline_cell);
        SweepReport {
            name: name.to_string(),
            scenarios: outcomes.len() as u64,
            cells,
            leakage,
            failures,
        }
    }

    /// Renders the machine-readable report (pretty JSON, deterministic).
    pub fn to_json(&self) -> String {
        let mut cells = Vec::new();
        for c in &self.cells {
            let params = c
                .params
                .iter()
                .fold(Json::obj(), |acc, (k, v)| acc.with(k, Json::str(v)));
            let p = &c.latency_ms;
            let latency = Json::obj()
                .with("count", Json::U64(p.count))
                .with("mean", Json::F64(p.mean))
                .with("min", Json::F64(p.min))
                .with("p50", Json::F64(p.p50))
                .with("p90", Json::F64(p.p90))
                .with("p95", Json::F64(p.p95))
                .with("p99", Json::F64(p.p99))
                .with("max", Json::F64(p.max));
            let counters = c
                .counters
                .iter()
                .fold(Json::obj(), |acc, (k, v)| acc.with(k, Json::U64(v)));
            let extra = c
                .extra
                .iter()
                .fold(Json::obj(), |acc, (k, v)| acc.with(k, Json::F64(*v)));
            // The cell's fully-resolved construction inputs: workload,
            // arm, seeds, parameters, and every config knob — enough to
            // re-run the cell from the report alone.
            let mut resolved = Json::obj()
                .with("workload", Json::str(&c.workload))
                .with("defense", Json::str(&c.defense))
                .with(
                    "seeds",
                    Json::Arr(c.seeds.iter().map(|&s| Json::U64(s)).collect()),
                )
                .with(
                    "params",
                    c.resolved_params
                        .iter()
                        .fold(Json::obj(), |acc, (k, v)| acc.with(k, Json::str(v))),
                )
                .with(
                    "config",
                    c.resolved_config
                        .iter()
                        .fold(Json::obj(), |acc, (k, v)| acc.with(k, Json::str(v))),
                );
            if let Some(o) = &c.overhead {
                resolved = resolved.with(
                    "overhead",
                    Json::obj()
                        .with("vs_cell", Json::str(&o.vs_cell))
                        .with("throughput_ratio", Json::F64(o.throughput_ratio))
                        .with("latency_p50_delta_ms", Json::F64(o.latency_p50_delta_ms))
                        .with("latency_p95_delta_ms", Json::F64(o.latency_p95_delta_ms)),
                );
            }
            cells.push(
                Json::obj()
                    .with("cell", Json::str(&c.cell))
                    .with("params", params)
                    .with("resolved", resolved)
                    .with("runs", Json::U64(c.runs))
                    .with("timeouts", Json::U64(c.timeouts))
                    .with("completed", Json::U64(c.completed))
                    .with("events_executed", Json::U64(c.events_executed))
                    .with("latency_ms", latency)
                    .with("counters", counters)
                    .with("extra", extra),
            );
        }
        let leakage = self
            .leakage
            .iter()
            .map(|v| {
                Json::obj()
                    .with("cell", Json::str(&v.cell))
                    .with("baseline", Json::str(&v.baseline))
                    .with("ks_distance", Json::F64(v.ks_distance))
                    .with(
                        "observations_needed_95",
                        if v.observations_needed_95 == u64::MAX {
                            Json::Null
                        } else {
                            Json::U64(v.observations_needed_95)
                        },
                    )
                    .with("distinguishable_at_95", Json::Bool(v.distinguishable_at_95))
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|(label, error)| {
                Json::obj()
                    .with("label", Json::str(label))
                    .with("error", Json::str(error))
            })
            .collect();
        Json::obj()
            .with("sweep", Json::str(&self.name))
            .with("schema_version", Json::U64(REPORT_SCHEMA_VERSION))
            .with("scenarios", Json::U64(self.scenarios))
            .with("cells", Json::Arr(cells))
            .with("leakage", Json::Arr(leakage))
            .with("failures", Json::Arr(failures))
            .render_pretty()
    }

    /// A human-readable per-cell table for the console.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>5} {:>8} {:>10} {:>10} {:>10}",
            "cell", "runs", "samples", "p50_ms", "p95_ms", "mean_ms"
        );
        for c in &self.cells {
            let p = &c.latency_ms;
            let _ = writeln!(
                out,
                "{:<44} {:>5} {:>8} {:>10.3} {:>10.3} {:>10.3}",
                c.cell, c.runs, p.count, p.p50, p.p95, p.mean
            );
        }
        for v in &self.leakage {
            let obs = if v.observations_needed_95 == u64::MAX {
                "inf".to_string()
            } else {
                v.observations_needed_95.to_string()
            };
            let _ = writeln!(
                out,
                "leakage {:<36} vs {:<24} ks={:.4} obs95={} distinguishable={}",
                v.cell, v.baseline, v.ks_distance, obs, v.distinguishable_at_95
            );
        }
        for (label, error) in &self.failures {
            let _ = writeln!(out, "FAILED {label}: {error}");
        }
        out
    }
}

/// Finds the cell's Baseline sibling — same grid coordinates, but with
/// the `cfg.defense` axis set to `"baseline"` — and prices the arm
/// against it. Only meaningful when the sweep actually varies the
/// defense axis; otherwise there is no sibling and no overhead row.
fn cell_overhead(cell: &CellAggregate, cells: &[CellAggregate]) -> Option<CellOverhead> {
    if cell.defense == "baseline" {
        return None;
    }
    let axis = cell
        .params
        .iter()
        .position(|(k, _)| k == "cfg.defense" || k == "defense")?;
    let mut wanted = cell.params.clone();
    wanted[axis].1 = "baseline".to_string();
    let base = cells.iter().find(|c| c.params == wanted)?;
    Some(CellOverhead {
        vs_cell: base.cell.clone(),
        throughput_ratio: if base.completed == 0 {
            // A sibling that completed nothing prices everything at
            // infinity; report 0 instead of NaN for JSON stability.
            0.0
        } else {
            cell.completed as f64 / base.completed as f64
        },
        latency_p50_delta_ms: cell.latency_ms.p50 - base.latency_ms.p50,
        latency_p95_delta_ms: cell.latency_ms.p95 - base.latency_ms.p95,
    })
}

fn leakage_verdicts(cells: &[CellAggregate], baseline_cell: Option<&str>) -> Vec<LeakageVerdict> {
    // With no explicit anchor, a grid with a victim axis judges each
    // victim cell against the clean (victim=false) cell of the *same*
    // arm coordinates. Across defense arms this is the verdict that
    // matters: a clean cell already reads differently per arm by
    // construction (flat Δ releases vs raw timings), so only the
    // within-arm comparison says whether the arm closed the channel.
    if baseline_cell.is_none() {
        let paired: Vec<LeakageVerdict> = cells
            .iter()
            .filter_map(|c| {
                let axis = c
                    .params
                    .iter()
                    .position(|(k, v)| k == "victim" && v == "true")?;
                let mut wanted = c.params.clone();
                wanted[axis].1 = "false".to_string();
                let base = cells.iter().find(|b| b.params == wanted)?;
                verdict_against(base, c)
            })
            .collect();
        if !paired.is_empty() {
            return paired;
        }
    }
    let baseline = match baseline_cell {
        Some(name) => cells.iter().find(|c| c.cell == name),
        None => cells.iter().find(|c| !c.samples.is_empty()),
    };
    let Some(base) = baseline else {
        return Vec::new();
    };
    cells
        .iter()
        .filter(|c| c.cell != base.cell)
        .filter_map(|c| verdict_against(base, c))
        .collect()
}

/// One KS + χ² verdict for `cell` against `base`; `None` when either
/// side has no samples to compare.
fn verdict_against(base: &CellAggregate, cell: &CellAggregate) -> Option<LeakageVerdict> {
    if base.samples.is_empty() || cell.samples.is_empty() {
        return None;
    }
    let base_dist = Empirical::from_samples(base.samples.as_slice().iter().copied());
    let dist = Empirical::from_samples(cell.samples.as_slice().iter().copied());
    let observations = Detector::from_samples(
        base.samples.as_slice(),
        cell.samples.as_slice(),
        10.min(base.samples.len().max(2)),
    )
    .observations_needed(0.95);
    Some(LeakageVerdict {
        cell: cell.cell.clone(),
        baseline: base.cell.clone(),
        ks_distance: ks_distance(&base_dist, &dist),
        observations_needed_95: observations,
        distinguishable_at_95: observations <= cell.samples.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioResult;

    fn outcome(cell: &str, seed: u64, samples: Vec<f64>) -> RunOutcome {
        RunOutcome {
            label: format!("{cell}#{seed}"),
            result: Ok(ScenarioResult {
                label: format!("{cell}#{seed}"),
                cell: cell.to_string(),
                cell_params: vec![("k".to_string(), cell.to_string())],
                workload: "test-workload".to_string(),
                defense: "stopwatch".to_string(),
                resolved_config: vec![("delta_n_ms".to_string(), "10".to_string())],
                resolved_params: vec![("bytes".to_string(), "100".to_string())],
                seed,
                completed: samples.len() as u64,
                samples_ms: samples,
                extra: vec![("sent".to_string(), 2.0)],
                clients_done: true,
                finished_ms: 100.0,
                events_executed: 10,
                replicas: 3,
                counters: vec![("net_irq".to_string(), 3)],
            }),
        }
    }

    #[test]
    fn cells_merge_over_seeds_in_first_seen_order() {
        let outcomes = vec![
            outcome("a", 1, vec![1.0, 2.0]),
            outcome("a", 2, vec![3.0]),
            outcome("b", 1, vec![10.0, 20.0]),
        ];
        let r = SweepReport::from_outcomes("t", &outcomes, None);
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].cell, "a");
        assert_eq!(r.cells[0].runs, 2);
        assert_eq!(r.cells[0].seeds, vec![1, 2]);
        assert_eq!(r.cells[0].latency_ms.count, 3);
        assert_eq!(r.cells[0].latency_ms.p50, 2.0);
        assert_eq!(r.cells[0].counters.get("net_irq"), 6);
        assert_eq!(r.cells[0].extra("sent"), 4.0);
        assert_eq!(r.cells[0].extra("missing"), 0.0);
        assert_eq!(r.cells[0].events_executed, 20);
        // Leakage: "b" judged against baseline "a".
        assert_eq!(r.leakage.len(), 1);
        assert_eq!(r.leakage[0].cell, "b");
        assert_eq!(r.leakage[0].baseline, "a");
        assert!(r.leakage[0].ks_distance > 0.9, "disjoint distributions");
    }

    fn arm_outcome(defense: &str, samples: Vec<f64>) -> RunOutcome {
        let mut o = outcome(&format!("cfg.defense={defense},victim=true"), 1, samples);
        let r = o.result.as_mut().expect("built Ok");
        r.defense = defense.to_string();
        r.cell_params = vec![
            ("cfg.defense".to_string(), defense.to_string()),
            ("victim".to_string(), "true".to_string()),
        ];
        o
    }

    #[test]
    fn defended_cells_are_priced_against_their_baseline_sibling() {
        let outcomes = vec![
            arm_outcome("baseline", vec![1.0, 2.0, 3.0, 4.0]),
            arm_outcome("deterland", vec![6.0, 7.0]),
        ];
        let r = SweepReport::from_outcomes("t", &outcomes, None);
        assert!(r.cells[0].overhead.is_none(), "baseline has no sibling");
        let o = r.cells[1].overhead.as_ref().expect("priced");
        assert_eq!(o.vs_cell, "cfg.defense=baseline,victim=true");
        assert!((o.throughput_ratio - 0.5).abs() < 1e-12);
        assert!((o.latency_p50_delta_ms - 4.0).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"overhead\""), "{json}");
        assert!(json.contains("\"throughput_ratio\": 0.5"), "{json}");
    }

    #[test]
    fn sweeps_without_a_defense_axis_price_nothing() {
        let outcomes = vec![outcome("a", 1, vec![1.0]), outcome("b", 1, vec![2.0])];
        let r = SweepReport::from_outcomes("t", &outcomes, None);
        assert!(r.cells.iter().all(|c| c.overhead.is_none()));
    }

    #[test]
    fn identical_cells_are_indistinguishable() {
        let xs: Vec<f64> = (0..200).map(|i| f64::from(i)).collect();
        let outcomes = vec![outcome("null", 1, xs.clone()), outcome("same", 1, xs)];
        let r = SweepReport::from_outcomes("t", &outcomes, Some("null"));
        assert_eq!(r.leakage.len(), 1);
        assert!(r.leakage[0].ks_distance < 1e-9);
        assert!(!r.leakage[0].distinguishable_at_95);
    }

    #[test]
    fn unknown_baseline_cell_is_a_failure() {
        let outcomes = vec![outcome("a", 1, vec![1.0]), outcome("b", 1, vec![2.0])];
        let r = SweepReport::from_outcomes("t", &outcomes, Some("z"));
        assert!(r.leakage.is_empty());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].1.contains("\"z\""), "{:?}", r.failures);
    }

    #[test]
    fn failures_are_reported_not_aggregated() {
        let outcomes = vec![
            outcome("a", 1, vec![1.0]),
            RunOutcome {
                label: "bad#1".to_string(),
                result: Err("boom".to_string()),
            },
        ];
        let r = SweepReport::from_outcomes("t", &outcomes, None);
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.failures, vec![("bad#1".to_string(), "boom".to_string())]);
        let json = r.to_json();
        assert!(json.contains("\"error\": \"boom\""));
    }

    #[test]
    fn json_is_stable_and_complete() {
        let outcomes = vec![outcome("a", 1, vec![1.0, 2.0, 3.0])];
        let r = SweepReport::from_outcomes("t", &outcomes, None);
        let j1 = r.to_json();
        let j2 = SweepReport::from_outcomes("t", &outcomes, None).to_json();
        assert_eq!(j1, j2);
        for needle in [
            "\"sweep\": \"t\"",
            &format!("\"schema_version\": {REPORT_SCHEMA_VERSION}"),
            "\"p50\": 2.0",
            "\"p95\": 3.0",
            "\"counters\"",
            "\"resolved\"",
            "\"workload\": \"test-workload\"",
            "\"defense\": \"stopwatch\"",
            "\"delta_n_ms\": \"10\"",
            "\"bytes\": \"100\"",
        ] {
            assert!(j1.contains(needle), "missing {needle} in {j1}");
        }
        let table = r.to_table();
        assert!(table.contains("cell"));
        assert!(table.contains('a'));
    }
}
