//! Packet types shared by the whole simulated network.
//!
//! Packets carry *metadata*, not real bytes: lengths drive link timing,
//! and a content hash stands in for payload identity (the egress node votes
//! on output-packet hashes across replicas, Sec. VI of the paper).

use std::fmt;

/// A logical network endpoint: a client application, a guest VM, or an
/// infrastructure service. Endpoints are location-independent; the
/// composition layer maps them onto machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// TCP header flags (only the ones the model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Connection-open flag.
    pub syn: bool,
    /// Acknowledgment-valid flag.
    pub ack: bool,
    /// Connection-close flag.
    pub fin: bool,
}

/// Application-level request riding in a segment (e.g. "GET file 7 of
/// 100 KB", or an NFS op). Three opaque words keep netsim independent of
/// workload semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppData {
    /// Workload-defined operation kind.
    pub kind: u32,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// A TCP-lite segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSegment {
    /// Connection identifier (unique per client connection).
    pub conn: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// First payload byte's stream offset.
    pub seq: u64,
    /// Cumulative acknowledgment (next expected byte), valid when
    /// `flags.ack`.
    pub ack: u64,
    /// Payload bytes carried.
    pub len: u32,
    /// Optional application request data.
    pub app: Option<AppData>,
}

/// What a UDP datagram means to the NAK-reliability layer above it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UdpKind {
    /// An application request (e.g. "send me file 7").
    Request(AppData),
    /// One data chunk of a stream.
    Data,
    /// Negative acknowledgment: the receiver asks for these chunk seqs
    /// again (the paper's suggested fix for StopWatch file-download
    /// performance, and what PGM itself uses).
    Nak(Vec<u64>),
    /// End of stream (carries total chunk count so the receiver can detect
    /// tail loss).
    Fin {
        /// Total chunks in the stream.
        total_chunks: u64,
    },
}

/// A UDP-lite datagram.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpSegment {
    /// Stream identifier.
    pub stream: u64,
    /// Chunk sequence number (for `Data`), else 0.
    pub seq: u64,
    /// Payload bytes carried.
    pub len: u32,
    /// Reliability-layer meaning.
    pub kind: UdpKind,
}

/// A packet body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Body {
    /// TCP-lite segment.
    Tcp(TcpSegment),
    /// UDP-lite datagram.
    Udp(UdpSegment),
    /// Background broadcast chatter (ARP and friends; the paper's testbed
    /// saw 50–100 of these per second and they flow through the ingress
    /// replication path like everything else).
    Broadcast {
        /// Broadcast sequence number.
        seq: u64,
    },
    /// Raw tagged payload for control planes and tests.
    Raw {
        /// Caller-defined tag.
        tag: u64,
        /// Payload bytes represented.
        len: u32,
    },
}

/// A network packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Payload.
    pub body: Body,
}

/// Fixed per-packet header overhead used for wire-time modeling (Ethernet +
/// IP + transport, rounded).
pub const HEADER_BYTES: u32 = 66;

impl Packet {
    /// Total bytes on the wire (header + payload).
    pub fn wire_bytes(&self) -> u32 {
        let payload = match &self.body {
            Body::Tcp(seg) => seg.len,
            Body::Udp(seg) => seg.len,
            Body::Broadcast { .. } => 28,
            Body::Raw { len, .. } => *len,
        };
        HEADER_BYTES + payload
    }

    /// A deterministic content hash over all fields. Two replicas of a
    /// deterministic guest emit packets with equal hashes; the egress node
    /// votes on these (Sec. VI). Computed by the seedless Fx word hash
    /// over the structural encoding — this runs once per replica copy of
    /// every guest output packet, so no formatting or allocation here.
    pub fn content_hash(&self) -> u64 {
        use std::hash::BuildHasher as _;
        std::hash::BuildHasherDefault::<simkit::fxhash::FxHasher>::default().hash_one(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pkt(seq: u64, len: u32) -> Packet {
        Packet {
            src: EndpointId(1),
            dst: EndpointId(2),
            body: Body::Tcp(TcpSegment {
                conn: 9,
                flags: TcpFlags::default(),
                seq,
                ack: 0,
                len,
                app: None,
            }),
        }
    }

    #[test]
    fn wire_bytes_include_header() {
        assert_eq!(tcp_pkt(0, 1000).wire_bytes(), 1066);
        let b = Packet {
            src: EndpointId(0),
            dst: EndpointId(1),
            body: Body::Broadcast { seq: 3 },
        };
        assert_eq!(b.wire_bytes(), HEADER_BYTES + 28);
    }

    #[test]
    fn content_hash_equal_for_equal_packets() {
        assert_eq!(
            tcp_pkt(5, 100).content_hash(),
            tcp_pkt(5, 100).content_hash()
        );
    }

    #[test]
    fn content_hash_differs_on_any_field() {
        let base = tcp_pkt(5, 100);
        assert_ne!(base.content_hash(), tcp_pkt(6, 100).content_hash());
        assert_ne!(base.content_hash(), tcp_pkt(5, 101).content_hash());
        let mut other = base.clone();
        other.dst = EndpointId(3);
        assert_ne!(base.content_hash(), other.content_hash());
    }

    #[test]
    fn udp_nak_roundtrip_equality() {
        let a = Body::Udp(UdpSegment {
            stream: 1,
            seq: 0,
            len: 20,
            kind: UdpKind::Nak(vec![3, 4, 9]),
        });
        let b = a.clone();
        assert_eq!(a, b);
    }
}
