//! Packet types shared by the whole simulated network.
//!
//! Packets carry *metadata*, not real bytes: lengths drive link timing,
//! and a content hash stands in for payload identity (the egress node votes
//! on output-packet hashes across replicas, Sec. VI of the paper).

use std::fmt;

/// A logical network endpoint: a client application, a guest VM, or an
/// infrastructure service. Endpoints are location-independent; the
/// composition layer maps them onto machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// TCP header flags (only the ones the model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Connection-open flag.
    pub syn: bool,
    /// Acknowledgment-valid flag.
    pub ack: bool,
    /// Connection-close flag.
    pub fin: bool,
}

/// Application-level request riding in a segment (e.g. "GET file 7 of
/// 100 KB", or an NFS op). Three opaque words keep netsim independent of
/// workload semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppData {
    /// Workload-defined operation kind.
    pub kind: u32,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// A TCP-lite segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSegment {
    /// Connection identifier (unique per client connection).
    pub conn: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// First payload byte's stream offset.
    pub seq: u64,
    /// Cumulative acknowledgment (next expected byte), valid when
    /// `flags.ack`.
    pub ack: u64,
    /// Payload bytes carried.
    pub len: u32,
    /// Optional application request data.
    pub app: Option<AppData>,
}

/// What a UDP datagram means to the NAK-reliability layer above it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UdpKind {
    /// An application request (e.g. "send me file 7").
    Request(AppData),
    /// One data chunk of a stream.
    Data,
    /// Negative acknowledgment: the receiver asks for these chunk seqs
    /// again (the paper's suggested fix for StopWatch file-download
    /// performance, and what PGM itself uses).
    Nak(Vec<u64>),
    /// End of stream (carries total chunk count so the receiver can detect
    /// tail loss).
    Fin {
        /// Total chunks in the stream.
        total_chunks: u64,
    },
}

/// A UDP-lite datagram.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpSegment {
    /// Stream identifier.
    pub stream: u64,
    /// Chunk sequence number (for `Data`), else 0.
    pub seq: u64,
    /// Payload bytes carried.
    pub len: u32,
    /// Reliability-layer meaning.
    pub kind: UdpKind,
}

/// A packet body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Body {
    /// TCP-lite segment.
    Tcp(TcpSegment),
    /// UDP-lite datagram.
    Udp(UdpSegment),
    /// Background broadcast chatter (ARP and friends; the paper's testbed
    /// saw 50–100 of these per second and they flow through the ingress
    /// replication path like everything else).
    Broadcast {
        /// Broadcast sequence number.
        seq: u64,
    },
    /// Raw tagged payload for control planes and tests.
    Raw {
        /// Caller-defined tag.
        tag: u64,
        /// Payload bytes represented.
        len: u32,
    },
}

/// A network packet.
///
/// Fields are private so the cached [`content_hash`](Packet::content_hash)
/// can never go stale: construction and every mutator recompute it, and
/// all reads go through accessors.
#[derive(Debug, Clone, Eq)]
pub struct Packet {
    /// Sending endpoint.
    src: EndpointId,
    /// Destination endpoint.
    dst: EndpointId,
    /// Payload.
    body: Body,
    /// Cached content hash over (src, dst, body), maintained by
    /// construction and the mutators. Excluded from `PartialEq`/`Hash`
    /// (it is a pure function of the other fields).
    hash: u64,
}

/// Fixed per-packet header overhead used for wire-time modeling (Ethernet +
/// IP + transport, rounded).
pub const HEADER_BYTES: u32 = 66;

/// The seedless Fx word hash over the structural field encoding, in
/// declaration order — exactly what `#[derive(Hash)]` fed to `hash_one`
/// before the cache existed, so hash values are stable across the change.
fn content_hash_of(src: EndpointId, dst: EndpointId, body: &Body) -> u64 {
    use std::hash::{BuildHasher as _, Hash as _, Hasher as _};
    let mut state =
        std::hash::BuildHasherDefault::<simkit::fxhash::FxHasher>::default().build_hasher();
    src.hash(&mut state);
    dst.hash(&mut state);
    body.hash(&mut state);
    state.finish()
}

impl Packet {
    /// Builds a packet and computes its content hash once.
    pub fn new(src: EndpointId, dst: EndpointId, body: Body) -> Self {
        let hash = content_hash_of(src, dst, &body);
        Packet {
            src,
            dst,
            body,
            hash,
        }
    }

    /// Sending endpoint.
    pub fn src(&self) -> EndpointId {
        self.src
    }

    /// Destination endpoint.
    pub fn dst(&self) -> EndpointId {
        self.dst
    }

    /// Payload.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Consumes the packet, yielding its payload (for re-sending a body
    /// under a new address pair without cloning it).
    pub fn into_body(self) -> Body {
        self.body
    }

    /// Rewrites the source endpoint, invalidating the cached hash.
    pub fn set_src(&mut self, src: EndpointId) {
        self.src = src;
        self.hash = content_hash_of(self.src, self.dst, &self.body);
    }

    /// Rewrites the destination endpoint, invalidating the cached hash.
    pub fn set_dst(&mut self, dst: EndpointId) {
        self.dst = dst;
        self.hash = content_hash_of(self.src, self.dst, &self.body);
    }

    /// Replaces the payload, invalidating the cached hash.
    pub fn set_body(&mut self, body: Body) {
        self.body = body;
        self.hash = content_hash_of(self.src, self.dst, &self.body);
    }

    /// Total bytes on the wire (header + payload).
    pub fn wire_bytes(&self) -> u32 {
        let payload = match &self.body {
            Body::Tcp(seg) => seg.len,
            Body::Udp(seg) => seg.len,
            Body::Broadcast { .. } => 28,
            Body::Raw { len, .. } => *len,
        };
        HEADER_BYTES + payload
    }

    /// A deterministic content hash over all fields. Two replicas of a
    /// deterministic guest emit packets with equal hashes; the egress node
    /// votes on these (Sec. VI). The hash is computed once at
    /// construction and cached — every replica tunnel copy and egress
    /// vote used to recompute it, which dominated the per-output-packet
    /// cost (~6 hashes per logical output packet before the cache).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        // The cached hash is a cheap discriminator; equal packets still
        // compare all fields (hash collisions must not alias packets).
        self.hash == other.hash
            && self.src == other.src
            && self.dst == other.dst
            && self.body == other.body
    }
}

impl std::hash::Hash for Packet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Field order matches the pre-cache `#[derive(Hash)]` so maps
        // keyed on packets observe identical hashes.
        self.src.hash(state);
        self.dst.hash(state);
        self.body.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pkt(seq: u64, len: u32) -> Packet {
        Packet::new(
            EndpointId(1),
            EndpointId(2),
            Body::Tcp(TcpSegment {
                conn: 9,
                flags: TcpFlags::default(),
                seq,
                ack: 0,
                len,
                app: None,
            }),
        )
    }

    #[test]
    fn wire_bytes_include_header() {
        assert_eq!(tcp_pkt(0, 1000).wire_bytes(), 1066);
        let b = Packet::new(EndpointId(0), EndpointId(1), Body::Broadcast { seq: 3 });
        assert_eq!(b.wire_bytes(), HEADER_BYTES + 28);
    }

    #[test]
    fn content_hash_equal_for_equal_packets() {
        assert_eq!(
            tcp_pkt(5, 100).content_hash(),
            tcp_pkt(5, 100).content_hash()
        );
    }

    #[test]
    fn content_hash_differs_on_any_field() {
        let base = tcp_pkt(5, 100);
        assert_ne!(base.content_hash(), tcp_pkt(6, 100).content_hash());
        assert_ne!(base.content_hash(), tcp_pkt(5, 101).content_hash());
        let mut other = base.clone();
        other.set_dst(EndpointId(3));
        assert_ne!(base.content_hash(), other.content_hash());
    }

    #[test]
    fn every_mutator_invalidates_the_cached_hash() {
        let base = tcp_pkt(5, 100);
        let mut p = base.clone();
        p.set_src(EndpointId(9));
        assert_ne!(p.content_hash(), base.content_hash());
        let mut p = base.clone();
        p.set_dst(EndpointId(9));
        assert_ne!(p.content_hash(), base.content_hash());
        let mut p = base.clone();
        p.set_body(Body::Raw { tag: 7, len: 1 });
        assert_ne!(p.content_hash(), base.content_hash());
        // And a mutation that restores the original field restores the
        // original hash: the cache is a pure function of the fields.
        let mut p = base.clone();
        p.set_src(EndpointId(9));
        p.set_src(base.src());
        assert_eq!(p.content_hash(), base.content_hash());
        assert_eq!(p, base);
    }

    #[test]
    fn clone_preserves_the_cached_hash() {
        let base = tcp_pkt(5, 100);
        let copy = base.clone();
        assert_eq!(copy.content_hash(), base.content_hash());
        assert_eq!(copy, base);
    }

    #[test]
    fn cached_hash_matches_a_fresh_structural_hash() {
        // The cache must agree with hashing the packet's `Hash` impl
        // directly (what the pre-cache code computed on every call).
        use std::hash::BuildHasher as _;
        let p = tcp_pkt(11, 640);
        let fresh =
            std::hash::BuildHasherDefault::<simkit::fxhash::FxHasher>::default().hash_one(&p);
        assert_eq!(p.content_hash(), fresh);
    }

    #[test]
    fn udp_nak_roundtrip_equality() {
        let a = Body::Udp(UdpSegment {
            stream: 1,
            seq: 0,
            len: 20,
            kind: UdpKind::Nak(vec![3, 4, 9]),
        });
        let b = a.clone();
        assert_eq!(a, b);
    }
}
