//! The cloud's ingress and egress nodes (paper Secs. V and VI).
//!
//! * The **ingress node** replicates every packet destined for a guest VM
//!   to all machines hosting that VM's replicas, so each VMM can propose a
//!   delivery time.
//! * The **egress node** receives each guest output packet from every
//!   replica (tunneled over TCP by the replica's network device model) and
//!   forwards it to its real destination when the *second* copy arrives —
//!   the median output timing of three replicas. Because deterministic
//!   replicas emit identical packet streams, the egress can also *vote*:
//!   a copy whose content hash disagrees flags a divergent replica.

use crate::link::NetNode;
use crate::packet::{EndpointId, Packet};
use simkit::fxhash::FxHashMap;

/// Replicates inbound packets to the hosts running a guest's replicas.
#[derive(Debug, Clone, Default)]
pub struct IngressNode {
    routes: FxHashMap<EndpointId, Vec<NetNode>>,
}

impl IngressNode {
    /// Creates an ingress with no routes.
    pub fn new() -> Self {
        IngressNode::default()
    }

    /// Registers the replica hosts for a guest endpoint.
    pub fn register(&mut self, guest: EndpointId, hosts: Vec<NetNode>) {
        self.routes.insert(guest, hosts);
    }

    /// The hosts a packet for `guest` must be replicated to (empty when the
    /// guest is unknown).
    pub fn route(&self, guest: EndpointId) -> &[NetNode] {
        self.routes.get(&guest).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of registered guests.
    pub fn guests(&self) -> usize {
        self.routes.len()
    }
}

/// Decision the egress node takes for one arriving copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EgressDecision {
    /// This is the second copy: forward the packet now (median timing).
    Forward(Packet),
    /// First copy, or a copy after forwarding: hold.
    Hold,
    /// The copy's content hash disagrees with earlier copies of the same
    /// output index — a replica has diverged.
    Divergence {
        /// The replica host whose copy disagreed.
        from: NetNode,
    },
}

#[derive(Debug, Clone)]
struct CopyState {
    /// Distinct content hashes seen and their copy counts.
    groups: Vec<(u64, u8)>,
    forwarded: bool,
}

/// Forwards each replicated output packet at its median (second-copy)
/// timing and votes on content.
#[derive(Debug, Clone, Default)]
pub struct EgressNode {
    seen: FxHashMap<(EndpointId, u64), CopyState>,
    forwarded: u64,
    divergences: u64,
}

impl EgressNode {
    /// Creates an empty egress node.
    pub fn new() -> Self {
        EgressNode::default()
    }

    /// Consumes one tunneled copy of output packet number `out_seq` from
    /// guest `guest`, received from replica host `from`.
    ///
    /// Copies are grouped by content hash (majority voting): the packet is
    /// forwarded the moment any hash group reaches two copies — the median
    /// output timing of the agreeing replicas — so a single divergent
    /// replica can neither corrupt nor block the output, regardless of
    /// arrival order.
    pub fn on_copy(
        &mut self,
        guest: EndpointId,
        out_seq: u64,
        from: NetNode,
        packet: Packet,
    ) -> EgressDecision {
        let hash = packet.content_hash();
        let entry = self.seen.entry((guest, out_seq)).or_insert(CopyState {
            groups: Vec::new(),
            forwarded: false,
        });
        let this_group = match entry.groups.iter_mut().find(|(h, _)| *h == hash) {
            Some((_, count)) => {
                *count += 1;
                *count
            }
            None => {
                entry.groups.push((hash, 1));
                1
            }
        };
        if entry.groups.len() > 1 {
            self.divergences += 1;
        }
        if this_group == 2 && !entry.forwarded {
            entry.forwarded = true;
            self.forwarded += 1;
            return EgressDecision::Forward(packet);
        }
        if entry.groups.len() > 1 && this_group == 1 {
            return EgressDecision::Divergence { from };
        }
        EgressDecision::Hold
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Divergent copies observed so far.
    pub fn divergences(&self) -> u64 {
        self.divergences
    }

    /// Drops per-packet state older than `out_seq < floor` for `guest`
    /// (bounded memory in long runs).
    pub fn gc(&mut self, guest: EndpointId, floor: u64) {
        self.seen.retain(|(g, s), _| *g != guest || *s >= floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Body;

    fn pkt(tag: u64) -> Packet {
        Packet::new(EndpointId(1), EndpointId(99), Body::Raw { tag, len: 100 })
    }

    #[test]
    fn ingress_routes() {
        let mut ing = IngressNode::new();
        ing.register(EndpointId(1), vec![NetNode(0), NetNode(1), NetNode(2)]);
        assert_eq!(ing.route(EndpointId(1)).len(), 3);
        assert!(ing.route(EndpointId(9)).is_empty());
        assert_eq!(ing.guests(), 1);
    }

    #[test]
    fn egress_forwards_second_copy() {
        let mut eg = EgressNode::new();
        let g = EndpointId(1);
        assert_eq!(eg.on_copy(g, 0, NetNode(0), pkt(7)), EgressDecision::Hold);
        assert!(matches!(
            eg.on_copy(g, 0, NetNode(1), pkt(7)),
            EgressDecision::Forward(_)
        ));
        // Third copy is held (already forwarded).
        assert_eq!(eg.on_copy(g, 0, NetNode(2), pkt(7)), EgressDecision::Hold);
        assert_eq!(eg.forwarded(), 1);
    }

    #[test]
    fn egress_keeps_streams_separate() {
        let mut eg = EgressNode::new();
        let g = EndpointId(1);
        eg.on_copy(g, 0, NetNode(0), pkt(7));
        // A different out_seq does not complete seq 0.
        assert_eq!(eg.on_copy(g, 1, NetNode(1), pkt(8)), EgressDecision::Hold);
        assert_eq!(eg.forwarded(), 0);
    }

    #[test]
    fn egress_detects_divergence() {
        let mut eg = EgressNode::new();
        let g = EndpointId(1);
        eg.on_copy(g, 0, NetNode(0), pkt(7));
        let d = eg.on_copy(g, 0, NetNode(1), pkt(8));
        assert_eq!(d, EgressDecision::Divergence { from: NetNode(1) });
        assert_eq!(eg.divergences(), 1);
        // The two matching replicas still get the packet out.
        assert!(matches!(
            eg.on_copy(g, 0, NetNode(2), pkt(7)),
            EgressDecision::Forward(_)
        ));
    }

    #[test]
    fn egress_survives_divergent_first_copy() {
        // The faulty replica's copy lands first; the two honest copies
        // still form a majority and the packet goes out.
        let mut eg = EgressNode::new();
        let g = EndpointId(1);
        assert_eq!(eg.on_copy(g, 0, NetNode(2), pkt(666)), EgressDecision::Hold);
        assert!(matches!(
            eg.on_copy(g, 0, NetNode(0), pkt(7)),
            EgressDecision::Divergence { .. }
        ));
        assert!(matches!(
            eg.on_copy(g, 0, NetNode(1), pkt(7)),
            EgressDecision::Forward(_)
        ));
        assert_eq!(eg.forwarded(), 1);
        assert!(eg.divergences() >= 1);
    }

    #[test]
    fn egress_gc_bounds_state() {
        let mut eg = EgressNode::new();
        let g = EndpointId(1);
        for s in 0..10 {
            eg.on_copy(g, s, NetNode(0), pkt(s));
            eg.on_copy(g, s, NetNode(1), pkt(s));
        }
        eg.gc(g, 8);
        // Old seqs re-count from scratch (forwarded again only on 2nd copy).
        assert_eq!(eg.on_copy(g, 3, NetNode(2), pkt(3)), EgressDecision::Hold);
        // Recent seq state kept: a third copy of seq 9 is Hold, not Forward.
        assert_eq!(eg.on_copy(g, 9, NetNode(2), pkt(9)), EgressDecision::Hold);
    }
}
