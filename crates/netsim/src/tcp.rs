//! A TCP-lite transport: three-way handshake, cumulative ACKs (one per
//! data segment, as the paper's traffic analysis assumes), a fixed
//! congestion window, go-back-N retransmission on timeout, and FIN
//! teardown.
//!
//! The model is sans-I/O: [`TcpEndpoint::on_segment`] consumes a segment
//! and returns segments to transmit plus application events. Payloads are
//! lengths, not bytes — enough to drive the packet-count and latency
//! behaviour that Figs. 5 and 6 measure.

use crate::packet::{AppData, Body, EndpointId, Packet, TcpFlags, TcpSegment};
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Transport parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per data segment).
    pub mss: u32,
    /// Fixed window, in segments in flight.
    pub window: u32,
    /// Retransmission timeout (go-back-N from the last cumulative ACK).
    pub rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            window: 8,
            rto: SimDuration::from_millis(200),
        }
    }
}

/// Connection role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpRole {
    /// Active opener (sends SYN).
    Client,
    /// Passive opener (answers SYN).
    Server,
}

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Server waiting for SYN / client before connect.
    Listen,
    /// Client sent SYN.
    SynSent,
    /// Server sent SYN-ACK.
    SynReceived,
    /// Handshake complete.
    Established,
    /// FIN sent or received; draining.
    Closing,
    /// Fully closed.
    Closed,
}

/// Application-visible events produced by the endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpEvent {
    /// Handshake finished.
    Connected,
    /// A request (segment carrying [`AppData`]) was delivered in order.
    Request(AppData),
    /// In-order payload bytes were delivered; `total` is cumulative.
    Delivered {
        /// Newly delivered bytes.
        new_bytes: u64,
        /// Cumulative in-order bytes delivered.
        total: u64,
    },
    /// The peer finished sending (`total` = its full stream length) and all
    /// of it has been delivered.
    PeerFinished {
        /// Total stream bytes received.
        total: u64,
    },
    /// All queued outbound data has been acknowledged.
    SendComplete,
}

/// Output of consuming one segment or tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TcpOutput {
    /// Segments to transmit, in order.
    pub packets: Vec<Packet>,
    /// Application events.
    pub events: Vec<TcpEvent>,
}

/// One half of a TCP-lite connection.
#[derive(Debug, Clone)]
pub struct TcpEndpoint {
    cfg: TcpConfig,
    conn: u64,
    local: EndpointId,
    remote: EndpointId,
    role: TcpRole,
    state: TcpState,
    // Send side.
    snd_una: u64,
    snd_next: u64,
    snd_total: u64,
    snd_fin: bool,
    fin_sent: bool,
    complete_raised_at: u64,        // snd_total when SendComplete last fired
    app_at: BTreeMap<u64, AppData>, // request data keyed by stream offset
    last_progress: SimTime,
    // Receive side.
    rcv_next: u64,
    ooo: BTreeMap<u64, (u32, Option<AppData>)>,
    peer_fin_at: Option<u64>,
    peer_fin_raised: bool,
    // Telemetry.
    sent_segments: u64,
    received_segments: u64,
    retransmits: u64,
}

impl TcpEndpoint {
    /// Creates a client endpoint and its opening SYN.
    pub fn client(
        cfg: TcpConfig,
        conn: u64,
        local: EndpointId,
        remote: EndpointId,
        now: SimTime,
    ) -> (Self, Packet) {
        let mut ep = Self::new(cfg, conn, local, remote, TcpRole::Client, now);
        ep.state = TcpState::SynSent;
        let syn = ep.make_segment(
            TcpFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            0,
            0,
            None,
        );
        ep.sent_segments += 1;
        (ep, syn)
    }

    /// Creates a listening server endpoint.
    pub fn server(
        cfg: TcpConfig,
        conn: u64,
        local: EndpointId,
        remote: EndpointId,
        now: SimTime,
    ) -> Self {
        Self::new(cfg, conn, local, remote, TcpRole::Server, now)
    }

    fn new(
        cfg: TcpConfig,
        conn: u64,
        local: EndpointId,
        remote: EndpointId,
        role: TcpRole,
        now: SimTime,
    ) -> Self {
        TcpEndpoint {
            cfg,
            conn,
            local,
            remote,
            role,
            state: TcpState::Listen,
            snd_una: 0,
            snd_next: 0,
            snd_total: 0,
            snd_fin: false,
            fin_sent: false,
            complete_raised_at: 0,
            app_at: BTreeMap::new(),
            last_progress: now,
            rcv_next: 0,
            ooo: BTreeMap::new(),
            peer_fin_at: None,
            peer_fin_raised: false,
            sent_segments: 0,
            received_segments: 0,
            retransmits: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Segments sent (including retransmissions).
    pub fn sent_segments(&self) -> u64 {
        self.sent_segments
    }

    /// Segments received.
    pub fn received_segments(&self) -> u64 {
        self.received_segments
    }

    /// Retransmitted segments.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Queues `bytes` for sending (with optional request data on the first
    /// segment) and optionally a FIN once everything is acknowledged;
    /// returns the segments the window allows right now.
    ///
    /// # Panics
    ///
    /// Panics if the connection is not established.
    pub fn send_stream(&mut self, bytes: u64, app: Option<AppData>, fin: bool) -> Vec<Packet> {
        assert!(
            self.state == TcpState::Established,
            "send_stream on non-established connection"
        );
        if let Some(a) = app {
            self.app_at.insert(self.snd_total, a);
        }
        self.snd_total += bytes;
        self.snd_fin |= fin;
        self.pump_send()
    }

    /// Consumes one inbound segment.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) -> TcpOutput {
        let mut out = TcpOutput::default();
        if seg.conn != self.conn || self.state == TcpState::Closed {
            return out;
        }
        self.received_segments += 1;

        // Handshake.
        match (self.state, seg.flags.syn, seg.flags.ack) {
            // A duplicate SYN means our SYN-ACK was likely lost: resend it.
            (TcpState::SynReceived, true, false) if self.role == TcpRole::Server => {
                out.packets.push(self.emit(
                    TcpFlags {
                        syn: true,
                        ack: true,
                        fin: false,
                    },
                    0,
                    0,
                    None,
                ));
                return out;
            }
            // A duplicate SYN-ACK means our handshake ACK was lost.
            (TcpState::Established, true, true) if self.role == TcpRole::Client => {
                out.packets.push(self.emit(
                    TcpFlags {
                        syn: false,
                        ack: true,
                        fin: false,
                    },
                    0,
                    self.rcv_next,
                    None,
                ));
                return out;
            }
            (TcpState::Listen, true, false) if self.role == TcpRole::Server => {
                self.state = TcpState::SynReceived;
                out.packets.push(self.emit(
                    TcpFlags {
                        syn: true,
                        ack: true,
                        fin: false,
                    },
                    0,
                    0,
                    None,
                ));
                return out;
            }
            (TcpState::SynSent, true, true) if self.role == TcpRole::Client => {
                self.state = TcpState::Established;
                self.last_progress = now;
                out.packets.push(self.emit(
                    TcpFlags {
                        syn: false,
                        ack: true,
                        fin: false,
                    },
                    0,
                    self.rcv_next,
                    None,
                ));
                out.events.push(TcpEvent::Connected);
                return out;
            }
            (TcpState::SynReceived, false, true) if self.role == TcpRole::Server => {
                self.state = TcpState::Established;
                self.last_progress = now;
                out.events.push(TcpEvent::Connected);
                // The handshake ACK may carry data; fall through.
            }
            _ => {}
        }

        // ACK processing (sender side).
        if seg.flags.ack && seg.ack > self.snd_una {
            self.snd_una = seg.ack.min(self.snd_next);
            self.last_progress = now;
            out.packets.extend(self.pump_send());
            if self.all_sent_acked() && self.complete_raised_at < self.snd_total {
                self.complete_raised_at = self.snd_total;
                out.events.push(TcpEvent::SendComplete);
            }
        }

        // Data processing (receiver side).
        if seg.len > 0 || seg.app.is_some() {
            if seg.seq >= self.rcv_next {
                self.ooo.insert(seg.seq, (seg.len, seg.app));
            }
            let before = self.rcv_next;
            let mut requests = Vec::new();
            while let Some(&(len, app)) = self.ooo.get(&self.rcv_next) {
                self.ooo.remove(&self.rcv_next);
                self.rcv_next += u64::from(len);
                if let Some(a) = app {
                    requests.push(a);
                }
                if len == 0 {
                    break; // pure-app segment; avoid spinning at same seq
                }
            }
            let new_bytes = self.rcv_next - before;
            if new_bytes > 0 {
                out.events.push(TcpEvent::Delivered {
                    new_bytes,
                    total: self.rcv_next,
                });
            }
            for a in requests {
                out.events.push(TcpEvent::Request(a));
            }
            // One cumulative ACK per data segment (the inbound packets that
            // dominate StopWatch's HTTP overhead, Sec. VII-C).
            out.packets.push(self.emit(
                TcpFlags {
                    syn: false,
                    ack: true,
                    fin: false,
                },
                0,
                self.rcv_next,
                None,
            ));
        }

        // FIN processing.
        if seg.flags.fin {
            self.peer_fin_at = Some(seg.seq);
            // ACK the FIN if it carried no data (data case ACKed above).
            if seg.len == 0 {
                out.packets.push(self.emit(
                    TcpFlags {
                        syn: false,
                        ack: true,
                        fin: false,
                    },
                    0,
                    self.rcv_next,
                    None,
                ));
            }
        }
        if let Some(fin_at) = self.peer_fin_at {
            if self.rcv_next >= fin_at && !self.peer_fin_raised {
                self.peer_fin_raised = true;
                self.state = if self.fin_sent {
                    TcpState::Closed
                } else {
                    TcpState::Closing
                };
                out.events.push(TcpEvent::PeerFinished {
                    total: self.rcv_next,
                });
            }
        }
        out
    }

    /// Timer tick: retransmission when no progress for an RTO — go-back-N
    /// for data, and SYN / SYN-ACK re-sends during the handshake (without
    /// which a single lost handshake packet would deadlock the connection).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        if now.saturating_duration_since(self.last_progress) < self.cfg.rto {
            return Vec::new();
        }
        match self.state {
            TcpState::SynSent => {
                self.last_progress = now;
                self.retransmits += 1;
                self.sent_segments += 1;
                vec![self.make_segment(
                    TcpFlags {
                        syn: true,
                        ack: false,
                        fin: false,
                    },
                    0,
                    0,
                    None,
                )]
            }
            TcpState::SynReceived => {
                self.last_progress = now;
                self.retransmits += 1;
                vec![self.emit(
                    TcpFlags {
                        syn: true,
                        ack: true,
                        fin: false,
                    },
                    0,
                    0,
                    None,
                )]
            }
            TcpState::Established | TcpState::Closing => {
                if self.snd_una >= self.snd_next {
                    return Vec::new();
                }
                self.last_progress = now;
                self.snd_next = self.snd_una;
                let pkts = self.pump_send();
                self.retransmits += pkts.len() as u64;
                pkts
            }
            _ => Vec::new(),
        }
    }

    fn all_sent_acked(&self) -> bool {
        self.snd_una >= self.snd_total && self.snd_next >= self.snd_total
    }

    /// Emits as many data segments as the window allows; appends FIN when
    /// everything has been sent.
    fn pump_send(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        if self.state != TcpState::Established && self.state != TcpState::Closing {
            return out;
        }
        let window_bytes = u64::from(self.cfg.window) * u64::from(self.cfg.mss);
        while self.snd_next < self.snd_total && self.snd_next - self.snd_una < window_bytes {
            // A segment never spans a request boundary, so each request's
            // AppData rides on the segment starting at its offset.
            let mut len = (self.snd_total - self.snd_next).min(u64::from(self.cfg.mss)) as u32;
            if let Some((&next_app, _)) = self.app_at.range(self.snd_next + 1..).next() {
                len = len.min((next_app - self.snd_next) as u32);
            }
            let app = self.app_at.get(&self.snd_next).copied();
            let is_last = self.snd_next + u64::from(len) >= self.snd_total;
            let fin = self.snd_fin && is_last;
            let seg = self.emit(
                TcpFlags {
                    syn: false,
                    ack: false,
                    fin,
                },
                len,
                0,
                app,
            );
            if fin {
                self.fin_sent = true;
            }
            self.snd_next += u64::from(len);
            out.push(seg);
        }
        // Data-less FIN (e.g. empty stream or FIN queued after data drained).
        if self.snd_fin && !self.fin_sent && self.snd_next >= self.snd_total {
            self.fin_sent = true;
            out.push(self.emit(
                TcpFlags {
                    syn: false,
                    ack: false,
                    fin: true,
                },
                0,
                0,
                None,
            ));
        }
        out
    }

    fn emit(&mut self, flags: TcpFlags, len: u32, ack: u64, app: Option<AppData>) -> Packet {
        self.sent_segments += 1;
        self.make_segment(flags, len, ack, app)
    }

    fn make_segment(&self, flags: TcpFlags, len: u32, ack: u64, app: Option<AppData>) -> Packet {
        Packet::new(
            self.local,
            self.remote,
            Body::Tcp(TcpSegment {
                conn: self.conn,
                flags,
                seq: if flags.syn { 0 } else { self.snd_next },
                ack,
                len,
                app,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(p: &Packet) -> &TcpSegment {
        match p.body() {
            Body::Tcp(s) => s,
            other => panic!("not tcp: {other:?}"),
        }
    }

    /// Runs both endpoints to quiescence with zero network delay, returning
    /// all events seen by each. Deterministic FIFO exchange.
    fn drain(
        a: &mut TcpEndpoint,
        b: &mut TcpEndpoint,
        first: Vec<Packet>,
    ) -> (Vec<TcpEvent>, Vec<TcpEvent>) {
        let mut a_events = Vec::new();
        let mut b_events = Vec::new();
        let mut to_b: Vec<Packet> = first;
        let mut to_a: Vec<Packet> = Vec::new();
        let now = SimTime::ZERO;
        for _ in 0..10_000 {
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
            for p in std::mem::take(&mut to_b) {
                let out = b.on_segment(seg(&p), now);
                to_a.extend(out.packets);
                b_events.extend(out.events);
            }
            for p in std::mem::take(&mut to_a) {
                let out = a.on_segment(seg(&p), now);
                to_b.extend(out.packets);
                a_events.extend(out.events);
            }
        }
        (a_events, b_events)
    }

    fn connected_pair() -> (TcpEndpoint, TcpEndpoint) {
        let cfg = TcpConfig::default();
        let (mut c, syn) =
            TcpEndpoint::client(cfg, 1, EndpointId(10), EndpointId(20), SimTime::ZERO);
        let mut s = TcpEndpoint::server(cfg, 1, EndpointId(20), EndpointId(10), SimTime::ZERO);
        let (ce, se) = drain(&mut c, &mut s, vec![syn]);
        assert!(ce.contains(&TcpEvent::Connected));
        assert!(se.contains(&TcpEvent::Connected));
        (c, s)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = connected_pair();
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        // SYN + SYN-ACK + ACK = client sent 2, server sent 1.
        assert_eq!(c.sent_segments(), 2);
        assert_eq!(s.sent_segments(), 1);
    }

    #[test]
    fn request_and_response_stream() {
        let (mut c, mut s) = connected_pair();
        let req = AppData {
            kind: 1,
            a: 7,
            b: 100_000,
        };
        let pkts = c.send_stream(200, Some(req), false);
        assert_eq!(pkts.len(), 1);
        let (ce, se) = drain(&mut c, &mut s, pkts);
        assert!(se.contains(&TcpEvent::Request(req)), "{se:?}");
        assert!(ce.iter().any(|e| matches!(e, TcpEvent::SendComplete)));

        // Server responds with 10 KB + FIN.
        let pkts = s.send_stream(10_000, None, true);
        assert!(!pkts.is_empty());
        let (se2, ce2) = drain(&mut s, &mut c, pkts);
        assert!(
            ce2.contains(&TcpEvent::PeerFinished { total: 10_000 }),
            "{ce2:?}"
        );
        assert!(se2.iter().any(|e| matches!(e, TcpEvent::SendComplete)));
    }

    #[test]
    fn ack_per_data_segment() {
        let (mut c, mut s) = connected_pair();
        let total: u64 = 20 * 1448;
        let before = c.sent_segments();
        let pkts = s.send_stream(total, None, false);
        drain(&mut s, &mut c, pkts);
        // Client sent one ACK per data segment (20 data segments).
        assert_eq!(c.sent_segments() - before, 20);
    }

    #[test]
    fn window_limits_in_flight() {
        let (_c, mut s) = connected_pair();
        let pkts = s.send_stream(100 * 1448, None, false);
        assert_eq!(pkts.len(), 8, "initial burst = window");
    }

    #[test]
    fn large_transfer_completes() {
        let (mut c, mut s) = connected_pair();
        let total: u64 = 1_000_000;
        let pkts = s.send_stream(total, None, true);
        let (_, ce) = drain(&mut s, &mut c, pkts);
        assert!(ce.contains(&TcpEvent::PeerFinished { total }));
        let delivered: u64 = ce
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Delivered { new_bytes, .. } => Some(*new_bytes),
                _ => None,
            })
            .sum();
        assert_eq!(delivered, total);
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        let (mut c, mut s) = connected_pair();
        let pkts = s.send_stream(3 * 1448, None, false);
        assert_eq!(pkts.len(), 3);
        // Deliver 2, 0, 1.
        let now = SimTime::ZERO;
        let o2 = c.on_segment(seg(&pkts[2]), now);
        assert!(o2
            .events
            .iter()
            .all(|e| !matches!(e, TcpEvent::Delivered { .. })));
        let o0 = c.on_segment(seg(&pkts[0]), now);
        assert!(o0.events.contains(&TcpEvent::Delivered {
            new_bytes: 1448,
            total: 1448
        }));
        let o1 = c.on_segment(seg(&pkts[1]), now);
        assert!(o1.events.contains(&TcpEvent::Delivered {
            new_bytes: 2 * 1448,
            total: 3 * 1448
        }));
    }

    #[test]
    fn rto_retransmits_from_una() {
        let (mut c, mut s) = connected_pair();
        let pkts = s.send_stream(2 * 1448, None, false);
        assert_eq!(pkts.len(), 2);
        // Both segments lost. Tick before RTO: nothing.
        assert!(s.on_tick(SimTime::from_millis(100)).is_empty());
        // After RTO: go-back-N resends both.
        let re = s.on_tick(SimTime::from_millis(300));
        assert_eq!(re.len(), 2);
        assert_eq!(s.retransmits(), 2);
        // Delivery then proceeds normally.
        let (_, ce) = drain(&mut s, &mut c, re);
        assert!(ce
            .iter()
            .any(|e| matches!(e, TcpEvent::Delivered { total, .. } if *total == 2 * 1448)));
    }

    #[test]
    fn wrong_conn_ignored() {
        let (mut c, _s) = connected_pair();
        let bogus = TcpSegment {
            conn: 999,
            flags: TcpFlags {
                syn: false,
                ack: true,
                fin: false,
            },
            seq: 0,
            ack: 50,
            len: 0,
            app: None,
        };
        let out = c.on_segment(&bogus, SimTime::ZERO);
        assert_eq!(out, TcpOutput::default());
    }

    #[test]
    fn fin_without_data() {
        let (mut c, mut s) = connected_pair();
        let pkts = s.send_stream(0, None, true);
        assert_eq!(pkts.len(), 1);
        assert!(seg(&pkts[0]).flags.fin);
        let (_, ce) = drain(&mut s, &mut c, pkts);
        assert!(ce.contains(&TcpEvent::PeerFinished { total: 0 }));
    }

    #[test]
    #[should_panic(expected = "non-established")]
    fn send_before_connect_panics() {
        let cfg = TcpConfig::default();
        let mut s = TcpEndpoint::server(cfg, 1, EndpointId(1), EndpointId(2), SimTime::ZERO);
        s.send_stream(10, None, false);
    }

    #[test]
    fn lost_syn_retransmitted_on_rto() {
        let cfg = TcpConfig::default();
        let (mut c, _lost_syn) =
            TcpEndpoint::client(cfg, 1, EndpointId(1), EndpointId(2), SimTime::ZERO);
        assert!(
            c.on_tick(SimTime::from_millis(100)).is_empty(),
            "before RTO"
        );
        let re = c.on_tick(SimTime::from_millis(250));
        assert_eq!(re.len(), 1);
        assert!(seg(&re[0]).flags.syn && !seg(&re[0]).flags.ack);
        assert_eq!(c.retransmits(), 1);
        // The handshake then completes normally.
        let mut s = TcpEndpoint::server(cfg, 1, EndpointId(2), EndpointId(1), SimTime::ZERO);
        let (ce, se) = drain(&mut c, &mut s, re);
        assert!(ce.contains(&TcpEvent::Connected));
        assert!(se.contains(&TcpEvent::Connected));
    }

    #[test]
    fn lost_synack_recovered_by_duplicate_syn() {
        let cfg = TcpConfig::default();
        let (mut c, syn) = TcpEndpoint::client(cfg, 1, EndpointId(1), EndpointId(2), SimTime::ZERO);
        let mut s = TcpEndpoint::server(cfg, 1, EndpointId(2), EndpointId(1), SimTime::ZERO);
        // SYN arrives; the SYN-ACK is lost.
        let out = s.on_segment(seg(&syn), SimTime::ZERO);
        assert_eq!(out.packets.len(), 1, "SYN-ACK emitted (and dropped)");
        assert_eq!(s.state(), TcpState::SynReceived);
        // Client RTO re-sends its SYN; server answers with a fresh SYN-ACK.
        let re_syn = c.on_tick(SimTime::from_millis(250));
        assert_eq!(re_syn.len(), 1);
        let out2 = s.on_segment(seg(&re_syn[0]), SimTime::from_millis(250));
        assert_eq!(out2.packets.len(), 1);
        assert!(seg(&out2.packets[0]).flags.syn && seg(&out2.packets[0]).flags.ack);
        let out3 = c.on_segment(seg(&out2.packets[0]), SimTime::from_millis(251));
        assert!(out3.events.contains(&TcpEvent::Connected));
    }

    #[test]
    fn server_rto_resends_synack_when_handshake_ack_lost() {
        let cfg = TcpConfig::default();
        let (mut c, syn) = TcpEndpoint::client(cfg, 1, EndpointId(1), EndpointId(2), SimTime::ZERO);
        let mut s = TcpEndpoint::server(cfg, 1, EndpointId(2), EndpointId(1), SimTime::ZERO);
        let synack = s.on_segment(seg(&syn), SimTime::ZERO).packets;
        // Client becomes Established; its handshake ACK is lost.
        let _lost_ack = c.on_segment(seg(&synack[0]), SimTime::ZERO);
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::SynReceived);
        // Server RTO re-sends the SYN-ACK; the client answers with a fresh
        // ACK, completing the server side.
        let re = s.on_tick(SimTime::from_millis(250));
        assert_eq!(re.len(), 1);
        let ack = c.on_segment(seg(&re[0]), SimTime::from_millis(251)).packets;
        assert_eq!(ack.len(), 1);
        let out = s.on_segment(seg(&ack[0]), SimTime::from_millis(252));
        assert!(out.events.contains(&TcpEvent::Connected));
    }
}
