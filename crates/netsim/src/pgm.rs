//! A PGM-style reliable multicast (RFC 3208, as implemented by OpenPGM,
//! which the StopWatch prototype embeds in its Dom0 network device model).
//!
//! Reliability is *receiver-driven*: receivers detect sequence gaps and send
//! NAKs; the sender retransmits from its history window. StopWatch uses
//! this channel for (a) replicating inbound guest packets to the three
//! replica hosts and (b) exchanging proposed virtual delivery times among
//! the three VMMs.
//!
//! The machines here are sans-I/O: they consume events and return packets
//! to send / payloads to deliver, so any event loop can drive them.

use std::collections::BTreeMap;

/// A PGM protocol message carrying payload `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgmPacket<T> {
    /// Original or retransmitted data.
    Data {
        /// Sequence number within the sender's stream.
        seq: u64,
        /// The payload.
        payload: T,
        /// `true` when this is a NAK-triggered retransmission.
        retransmit: bool,
    },
    /// Negative acknowledgment listing missing sequence numbers.
    Nak {
        /// The missing sequence numbers.
        missing: Vec<u64>,
    },
}

/// Sender half: assigns sequence numbers, keeps a bounded retransmission
/// history, answers NAKs.
///
/// # Examples
///
/// ```
/// use netsim::pgm::{PgmReceiver, PgmSender};
/// let mut tx = PgmSender::new(64);
/// let mut rx = PgmReceiver::new();
/// let p0 = tx.send("a");
/// let p1 = tx.send("b");
/// // p0 is lost; rx sees p1 first and NAKs seq 0.
/// let out = rx.on_packet(p1);
/// assert!(out.delivered.is_empty());
/// assert_eq!(out.nak_missing, vec![0]);
/// let retx = tx.on_nak(&out.nak_missing);
/// let out = rx.on_packet(retx.into_iter().next().unwrap());
/// assert_eq!(out.delivered, vec!["a", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct PgmSender<T> {
    next_seq: u64,
    history: BTreeMap<u64, T>,
    window: usize,
}

impl<T: Clone> PgmSender<T> {
    /// Creates a sender with a retransmission history of `window` packets.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "history window must be positive");
        PgmSender {
            next_seq: 0,
            history: BTreeMap::new(),
            window,
        }
    }

    /// Wraps `payload` in the next data packet.
    pub fn send(&mut self, payload: T) -> PgmPacket<T> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.insert(seq, payload.clone());
        while self.history.len() > self.window {
            let oldest = *self.history.keys().next().expect("non-empty");
            self.history.remove(&oldest);
        }
        PgmPacket::Data {
            seq,
            payload,
            retransmit: false,
        }
    }

    /// Produces retransmissions for the requested sequence numbers.
    /// Sequences that have aged out of the history are silently skipped
    /// (matching PGM's bounded-window semantics).
    pub fn on_nak(&self, missing: &[u64]) -> Vec<PgmPacket<T>> {
        missing
            .iter()
            .filter_map(|seq| {
                self.history.get(seq).map(|payload| PgmPacket::Data {
                    seq: *seq,
                    payload: payload.clone(),
                    retransmit: true,
                })
            })
            .collect()
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// What a receiver wants done after consuming a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxOutput<T> {
    /// Payloads now deliverable in order.
    pub delivered: Vec<T>,
    /// Gap sequences to NAK (empty if none detected by this packet).
    pub nak_missing: Vec<u64>,
}

/// Receiver half: reorders, detects gaps, requests retransmission.
#[derive(Debug, Clone, Default)]
pub struct PgmReceiver<T> {
    expected: u64,
    buffer: BTreeMap<u64, T>,
    nakked: Vec<u64>,
}

impl<T> PgmReceiver<T> {
    /// Creates a receiver expecting sequence 0 first.
    pub fn new() -> Self {
        PgmReceiver {
            expected: 0,
            buffer: BTreeMap::new(),
            nakked: Vec::new(),
        }
    }

    /// Consumes one packet; returns in-order deliveries and fresh NAKs.
    /// `Nak` packets addressed to senders are ignored by receivers.
    pub fn on_packet(&mut self, pkt: PgmPacket<T>) -> RxOutput<T> {
        let mut out = RxOutput {
            delivered: Vec::new(),
            nak_missing: Vec::new(),
        };
        let PgmPacket::Data { seq, payload, .. } = pkt else {
            return out;
        };
        if seq < self.expected || self.buffer.contains_key(&seq) {
            return out; // duplicate
        }
        self.buffer.insert(seq, payload);
        // Deliver the in-order prefix.
        while let Some(payload) = self.buffer.remove(&self.expected) {
            out.delivered.push(payload);
            self.expected += 1;
        }
        // NAK any gaps below the highest buffered seq, once each.
        if let Some(&hi) = self.buffer.keys().next_back() {
            for missing in self.expected..hi {
                if !self.buffer.contains_key(&missing) && !self.nakked.contains(&missing) {
                    self.nakked.push(missing);
                    out.nak_missing.push(missing);
                }
            }
        }
        self.nakked.retain(|s| *s >= self.expected);
        out
    }

    /// Re-raises NAKs for still-missing gaps (call on a timer; PGM NAKs are
    /// retried until satisfied).
    pub fn pending_naks(&self) -> Vec<u64> {
        match self.buffer.keys().next_back() {
            Some(&hi) => (self.expected..hi)
                .filter(|s| !self.buffer.contains_key(s))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Next sequence the application will see.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut tx = PgmSender::new(16);
        let mut rx = PgmReceiver::new();
        for i in 0..5 {
            let out = rx.on_packet(tx.send(i));
            assert_eq!(out.delivered, vec![i]);
            assert!(out.nak_missing.is_empty());
        }
        assert_eq!(rx.expected(), 5);
    }

    #[test]
    fn reorder_without_loss_delivers_in_order() {
        let mut tx = PgmSender::new(16);
        let mut rx = PgmReceiver::new();
        let p0 = tx.send("a");
        let p1 = tx.send("b");
        let out1 = rx.on_packet(p1);
        assert!(out1.delivered.is_empty());
        assert_eq!(out1.nak_missing, vec![0]); // it can't tell reorder from loss
        let out0 = rx.on_packet(p0);
        assert_eq!(out0.delivered, vec!["a", "b"]);
    }

    #[test]
    fn loss_recovery_via_nak() {
        let mut tx = PgmSender::new(16);
        let mut rx = PgmReceiver::new();
        let _lost = tx.send(10);
        let p1 = tx.send(11);
        let p2 = tx.send(12);
        let o1 = rx.on_packet(p1);
        assert_eq!(o1.nak_missing, vec![0]);
        let o2 = rx.on_packet(p2);
        assert!(o2.nak_missing.is_empty(), "NAK only raised once per gap");
        let retx = tx.on_nak(&[0]);
        assert_eq!(retx.len(), 1);
        let o3 = rx.on_packet(retx.into_iter().next().unwrap());
        assert_eq!(o3.delivered, vec![10, 11, 12]);
    }

    #[test]
    fn duplicates_ignored() {
        let mut tx = PgmSender::new(16);
        let mut rx = PgmReceiver::new();
        let p0 = tx.send(1);
        assert_eq!(rx.on_packet(p0.clone()).delivered, vec![1]);
        assert!(rx.on_packet(p0).delivered.is_empty());
    }

    #[test]
    fn history_window_ages_out() {
        let mut tx = PgmSender::new(2);
        tx.send(0);
        tx.send(1);
        tx.send(2); // seq 0 aged out
        assert!(tx.on_nak(&[0]).is_empty());
        assert_eq!(tx.on_nak(&[1, 2]).len(), 2);
    }

    #[test]
    fn pending_naks_report_all_open_gaps() {
        let mut tx = PgmSender::new(16);
        let mut rx = PgmReceiver::new();
        let mut pkts: Vec<_> = (0..6).map(|i| tx.send(i)).collect();
        // Deliver only seqs 2 and 5.
        let p5 = pkts.remove(5);
        let p2 = pkts.remove(2);
        rx.on_packet(p2);
        rx.on_packet(p5);
        assert_eq!(rx.pending_naks(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn nak_packet_to_receiver_is_noop() {
        let mut rx: PgmReceiver<u32> = PgmReceiver::new();
        let out = rx.on_packet(PgmPacket::Nak { missing: vec![1] });
        assert!(out.delivered.is_empty() && out.nak_missing.is_empty());
    }
}
