//! Background broadcast traffic.
//!
//! The paper's testbed sat on a /24 campus subnet; ARP and other broadcast
//! chatter (50–100 packets/s) was replicated to every guest replica through
//! the ingress machinery and "is reflected in our numbers" (Sec. VII-B).
//! This generator reproduces that ambient load as a Poisson process with a
//! rate drawn uniformly from the configured band.

use crate::packet::{Body, EndpointId, Packet};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// Poisson broadcast source.
#[derive(Debug, Clone)]
pub struct BroadcastSource {
    rate_per_sec: f64,
    next_seq: u64,
    rng: SimRng,
    src: EndpointId,
}

impl BroadcastSource {
    /// Creates a source with rate drawn uniformly from
    /// `[min_rate, max_rate]` packets/second (the paper's band is 50–100).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_rate <= max_rate`.
    pub fn new(src: EndpointId, min_rate: f64, max_rate: f64, mut rng: SimRng) -> Self {
        assert!(
            min_rate > 0.0 && min_rate <= max_rate,
            "need 0 < min_rate <= max_rate"
        );
        let rate_per_sec = if min_rate == max_rate {
            min_rate
        } else {
            rng.uniform(min_rate, max_rate)
        };
        BroadcastSource {
            rate_per_sec,
            next_seq: 0,
            rng,
            src,
        }
    }

    /// The realized rate for this run.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next broadcast: `(inter-arrival gap, packet)`.
    pub fn next_broadcast(&mut self) -> (SimDuration, Packet) {
        let gap = SimDuration::from_secs_f64(self.rng.exponential(self.rate_per_sec));
        let seq = self.next_seq;
        self.next_seq += 1;
        (
            gap,
            // EndpointId(u64::MAX) is the broadcast pseudo-destination.
            Packet::new(self.src, EndpointId(u64::MAX), Body::Broadcast { seq }),
        )
    }

    /// Generates all broadcasts in `[0, horizon)` as absolute arrival times.
    pub fn schedule(&mut self, horizon: SimTime) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let (gap, pkt) = self.next_broadcast();
            t += gap;
            if t >= horizon {
                break;
            }
            out.push((t, pkt));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_in_band() {
        for seed in 0..20 {
            let s = BroadcastSource::new(EndpointId(0), 50.0, 100.0, SimRng::new(seed));
            assert!((50.0..=100.0).contains(&s.rate()));
        }
    }

    #[test]
    fn schedule_density_matches_rate() {
        let mut s = BroadcastSource::new(EndpointId(0), 80.0, 80.0, SimRng::new(5));
        let pkts = s.schedule(SimTime::from_secs(20));
        let per_sec = pkts.len() as f64 / 20.0;
        assert!((per_sec - 80.0).abs() < 8.0, "rate {per_sec}");
    }

    #[test]
    fn seqs_are_consecutive() {
        let mut s = BroadcastSource::new(EndpointId(0), 60.0, 90.0, SimRng::new(2));
        let pkts = s.schedule(SimTime::from_secs(2));
        for (i, (_, p)) in pkts.iter().enumerate() {
            match p.body() {
                Body::Broadcast { seq } => assert_eq!(*seq, i as u64),
                ref other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn arrival_times_monotone() {
        let mut s = BroadcastSource::new(EndpointId(0), 100.0, 100.0, SimRng::new(9));
        let pkts = s.schedule(SimTime::from_secs(5));
        for w in pkts.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    #[should_panic(expected = "min_rate")]
    fn bad_band_panics() {
        BroadcastSource::new(EndpointId(0), 0.0, 10.0, SimRng::new(1));
    }
}
