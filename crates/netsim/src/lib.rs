//! # netsim — the network substrate of the StopWatch reproduction
//!
//! The paper's prototype runs on a real /24 campus subnet with OpenPGM for
//! packet replication and proposal exchange, plus ordinary TCP/UDP service
//! traffic. This crate rebuilds those pieces as deterministic, sans-I/O
//! models:
//!
//! * [`packet`] — packet/endpoint types with content hashing (for egress
//!   output voting);
//! * [`link`] — latency/jitter/loss link models and a FIFO-queued
//!   [`link::Fabric`];
//! * [`pgm`] — PGM-style NAK-based reliable multicast (RFC 3208 / OpenPGM),
//!   used for inbound-packet replication and VMM proposal exchange;
//! * [`tcp`] — TCP-lite (handshake, ACK-per-segment, fixed window, RTO),
//!   whose inbound ACK stream is what makes naive HTTP slow under StopWatch
//!   (Fig. 5);
//! * [`udp`] — UDP with NAK-based reliability, the paper's suggested
//!   StopWatch-friendly file transfer (Fig. 5);
//! * [`infra`] — the ingress (replication) and egress (second-copy
//!   forwarding + output voting) nodes;
//! * [`background`] — the 50–100 pkt/s broadcast chatter of the testbed.

pub mod background;
pub mod infra;
pub mod link;
pub mod packet;
pub mod pgm;
pub mod tcp;
pub mod udp;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::background::BroadcastSource;
    pub use crate::infra::{EgressDecision, EgressNode, IngressNode};
    pub use crate::link::{Fabric, LinkModel, NetNode};
    pub use crate::packet::{AppData, Body, EndpointId, Packet, TcpSegment, UdpKind, UdpSegment};
    pub use crate::pgm::{PgmPacket, PgmReceiver, PgmSender};
    pub use crate::tcp::{TcpConfig, TcpEndpoint, TcpEvent, TcpOutput, TcpState};
    pub use crate::udp::{UdpClientEvent, UdpFileClient, UdpFileServer, UDP_CHUNK};
}
