//! Link latency/loss models and the cloud's network fabric.
//!
//! Machines (hosts, the ingress and egress nodes, external client machines)
//! are [`NetNode`]s; a [`Fabric`] holds a [`LinkModel`] per directed pair,
//! with per-pair deterministic RNG streams so packet timing differences
//! between replica hosts — the thing StopWatch's median machinery absorbs —
//! are reproducible.

use simkit::fxhash::FxHashMap;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};

/// A machine on the physical network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetNode(pub usize);

/// Latency, bandwidth and loss model of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Fixed propagation + switching delay.
    pub base_latency: SimDuration,
    /// Uniform jitter added on top (0 to `jitter`).
    pub jitter: SimDuration,
    /// Serialization rate in bits per second.
    pub bandwidth_bps: u64,
    /// Independent drop probability per packet.
    pub loss_prob: f64,
}

impl LinkModel {
    /// A campus-LAN-ish link: 0.3 ms base, 0.2 ms jitter, 1 Gb/s, lossless.
    /// Matches the paper's testbed (/24 subnet on a campus network).
    pub fn lan() -> Self {
        LinkModel {
            base_latency: SimDuration::from_micros(300),
            jitter: SimDuration::from_micros(200),
            bandwidth_bps: 1_000_000_000,
            loss_prob: 0.0,
        }
    }

    /// A campus-wireless client path: 2 ms base, 1.5 ms jitter, 50 Mb/s
    /// (the paper's client was a laptop on campus 802.11, a few wireless
    /// hops from the testbed subnet).
    pub fn wireless_client() -> Self {
        LinkModel {
            base_latency: SimDuration::from_millis(2),
            jitter: SimDuration::from_micros(1500),
            bandwidth_bps: 50_000_000,
            loss_prob: 0.0,
        }
    }

    /// Transfer time for `bytes` on this link, excluding queueing.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        SimDuration::from_secs_f64(bits as f64 / self.bandwidth_bps as f64)
    }

    /// One-way delay draw for a packet of `bytes`.
    pub fn delay(&self, bytes: u32, rng: &mut SimRng) -> SimDuration {
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            rng.uniform_duration(SimDuration::ZERO, self.jitter)
        };
        self.base_latency + jitter + self.serialization(bytes)
    }

    /// Whether this packet is dropped.
    pub fn drops(&self, rng: &mut SimRng) -> bool {
        self.loss_prob > 0.0 && rng.chance(self.loss_prob)
    }
}

/// The network fabric: per-pair link models with a default, and per-pair
/// RNG streams.
///
/// # Examples
///
/// ```
/// use netsim::link::{Fabric, LinkModel, NetNode};
/// use simkit::rng::SimRng;
/// let mut fabric = Fabric::new(LinkModel::lan(), SimRng::new(1));
/// let d = fabric.delay(NetNode(0), NetNode(1), 1500);
/// assert!(d.as_millis_f64() > 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    default: LinkModel,
    overrides: FxHashMap<(NetNode, NetNode), LinkModel>,
    rng_root: SimRng,
    streams: FxHashMap<(NetNode, NetNode), SimRng>,
    /// Per-link FIFO state: when the link's transmitter is next free.
    /// Cumulative serialization makes bulk sends pace out at wire rate
    /// instead of departing in parallel.
    free_at: FxHashMap<(NetNode, NetNode), SimTime>,
}

impl Fabric {
    /// Creates a fabric where every pair uses `default`.
    pub fn new(default: LinkModel, rng: SimRng) -> Self {
        Fabric {
            default,
            overrides: FxHashMap::default(),
            rng_root: rng,
            streams: FxHashMap::default(),
            free_at: FxHashMap::default(),
        }
    }

    /// Overrides the link model for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: NetNode, to: NetNode, model: LinkModel) {
        self.overrides.insert((from, to), model);
    }

    /// The model applied to `(from, to)`.
    pub fn link(&self, from: NetNode, to: NetNode) -> LinkModel {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    fn stream(&mut self, from: NetNode, to: NetNode) -> &mut SimRng {
        let root = &self.rng_root;
        self.streams
            .entry((from, to))
            .or_insert_with(|| root.stream(&format!("link:{}->{}", from.0, to.0)))
    }

    /// Draws the one-way delay for a packet of `bytes` from `from` to `to`,
    /// ignoring queueing (stateless draw).
    pub fn delay(&mut self, from: NetNode, to: NetNode, bytes: u32) -> SimDuration {
        let model = self.link(from, to);
        model.delay(bytes, self.stream(from, to))
    }

    /// Enqueues a packet of `bytes` on `(from, to)` at time `now` and
    /// returns its arrival time, accounting for FIFO serialization behind
    /// previously enqueued packets. `None` means the packet was dropped.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: NetNode,
        to: NetNode,
        bytes: u32,
    ) -> Option<SimTime> {
        let model = self.link(from, to);
        let rng = self.stream(from, to);
        if model.drops(rng) {
            return None;
        }
        let jitter = if model.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            rng.uniform_duration(SimDuration::ZERO, model.jitter)
        };
        let free = self
            .free_at
            .get(&(from, to))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = now.max(free);
        let done_serializing = start + model.serialization(bytes);
        self.free_at.insert((from, to), done_serializing);
        Some(done_serializing + model.base_latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_math() {
        let m = LinkModel {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bandwidth_bps: 8_000_000, // 1 MB/s
            loss_prob: 0.0,
        };
        assert_eq!(m.serialization(1_000_000), SimDuration::from_secs(1));
    }

    #[test]
    fn delay_within_bounds() {
        let m = LinkModel::lan();
        let mut rng = SimRng::new(3).stream("t");
        for _ in 0..200 {
            let d = m.delay(1500, &mut rng);
            assert!(d >= m.base_latency);
            assert!(d <= m.base_latency + m.jitter + m.serialization(1500));
        }
    }

    #[test]
    fn lossless_never_drops() {
        let m = LinkModel::lan();
        let mut rng = SimRng::new(4).stream("t");
        assert!((0..100).all(|_| !m.drops(&mut rng)));
    }

    #[test]
    fn lossy_drops_sometimes() {
        let m = LinkModel {
            loss_prob: 0.5,
            ..LinkModel::lan()
        };
        let mut rng = SimRng::new(5).stream("t");
        let drops = (0..1000).filter(|_| m.drops(&mut rng)).count();
        assert!((300..700).contains(&drops), "drops {drops}");
    }

    #[test]
    fn fabric_overrides_apply() {
        let mut f = Fabric::new(LinkModel::lan(), SimRng::new(1));
        f.set_link(NetNode(0), NetNode(1), LinkModel::wireless_client());
        assert_eq!(f.link(NetNode(0), NetNode(1)), LinkModel::wireless_client());
        assert_eq!(f.link(NetNode(1), NetNode(0)), LinkModel::lan());
    }

    #[test]
    fn fabric_streams_deterministic_and_independent() {
        let mk = || Fabric::new(LinkModel::lan(), SimRng::new(9));
        let (mut a, mut b) = (mk(), mk());
        let d1 = a.delay(NetNode(0), NetNode(1), 100);
        let d2 = b.delay(NetNode(0), NetNode(1), 100);
        assert_eq!(d1, d2, "same seed, same draw");
        // Different pairs use different streams: drawing on (0,2) first must
        // not change what (0,1) yields.
        let mut c = mk();
        c.delay(NetNode(0), NetNode(2), 100);
        let d3 = c.delay(NetNode(0), NetNode(1), 100);
        assert_eq!(d1, d3, "pairs have independent streams");
    }

    #[test]
    fn transmit_lossless_is_some() {
        let mut f = Fabric::new(LinkModel::lan(), SimRng::new(2));
        assert!(f
            .transmit(SimTime::ZERO, NetNode(0), NetNode(1), 64)
            .is_some());
    }

    #[test]
    fn transmit_fifo_paces_bulk_sends() {
        // 1 MB/s link, zero latency/jitter: ten 1000-byte packets enqueued
        // together must arrive 1 ms apart, not simultaneously.
        let model = LinkModel {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            loss_prob: 0.0,
        };
        let mut f = Fabric::new(model, SimRng::new(3));
        let arrivals: Vec<SimTime> = (0..10)
            .map(|_| {
                f.transmit(SimTime::ZERO, NetNode(0), NetNode(1), 1000)
                    .unwrap()
            })
            .collect();
        for (i, t) in arrivals.iter().enumerate() {
            assert_eq!(t.as_nanos(), (i as u64 + 1) * 1_000_000, "packet {i}");
        }
        // After the queue drains, a later packet starts fresh.
        let late = f
            .transmit(SimTime::from_millis(100), NetNode(0), NetNode(1), 1000)
            .unwrap();
        assert_eq!(late, SimTime::from_millis(101));
    }

    #[test]
    fn transmit_queues_are_per_link() {
        let model = LinkModel {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bandwidth_bps: 8_000_000,
            loss_prob: 0.0,
        };
        let mut f = Fabric::new(model, SimRng::new(4));
        f.transmit(SimTime::ZERO, NetNode(0), NetNode(1), 1000)
            .unwrap();
        // A different pair is unaffected by (0,1)'s queue.
        let other = f
            .transmit(SimTime::ZERO, NetNode(0), NetNode(2), 1000)
            .unwrap();
        assert_eq!(other, SimTime::from_millis(1));
    }
}
