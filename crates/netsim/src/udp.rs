//! UDP-lite file transfer with NAK-based reliability — the transport the
//! paper uses to show how StopWatch-friendly protocols recover download
//! performance (Fig. 5, "UDP StopWatch"): almost no packets flow *into* the
//! replicated server, so almost nothing crosses the median machinery.
//!
//! The server streams all chunks plus a FIN carrying the total count; the
//! client NAKs missing chunks (and re-sends its request if it hears
//! nothing). Reliability is enforced "at a layer above UDP using negative
//! acknowledgments", exactly as Sec. VII-C proposes.

use crate::packet::{AppData, Body, EndpointId, Packet, UdpKind, UdpSegment};
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Chunk payload size (bytes) used by both sides.
pub const UDP_CHUNK: u32 = 1448;

/// Server half: answers a request by streaming chunks, answers NAKs with
/// retransmissions.
#[derive(Debug, Clone)]
pub struct UdpFileServer {
    local: EndpointId,
    sent_chunks: u64,
    retransmits: u64,
}

impl UdpFileServer {
    /// Creates a server.
    pub fn new(local: EndpointId) -> Self {
        UdpFileServer {
            local,
            sent_chunks: 0,
            retransmits: 0,
        }
    }

    /// Handles one inbound datagram; returns packets to send.
    ///
    /// A `Request(app)` with `app.b` = file size in bytes triggers a full
    /// stream; a `Nak` triggers retransmission of the named chunks.
    pub fn on_datagram(&mut self, from: EndpointId, seg: &UdpSegment) -> Vec<Packet> {
        match &seg.kind {
            UdpKind::Request(app) => {
                let total_bytes = app.b;
                let chunks = total_bytes.div_ceil(u64::from(UDP_CHUNK)).max(1);
                let mut out = Vec::with_capacity(chunks as usize + 1);
                for i in 0..chunks {
                    let len = if i == chunks - 1 {
                        (total_bytes - i * u64::from(UDP_CHUNK)) as u32
                    } else {
                        UDP_CHUNK
                    };
                    out.push(self.data(from, seg.stream, i, len.max(1)));
                }
                out.push(Packet::new(
                    self.local,
                    from,
                    Body::Udp(UdpSegment {
                        stream: seg.stream,
                        seq: chunks,
                        len: 8,
                        kind: UdpKind::Fin {
                            total_chunks: chunks,
                        },
                    }),
                ));
                self.sent_chunks += chunks;
                out
            }
            UdpKind::Nak(missing) => {
                self.retransmits += missing.len() as u64;
                missing
                    .iter()
                    .map(|&i| self.data(from, seg.stream, i, UDP_CHUNK))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    fn data(&mut self, to: EndpointId, stream: u64, seq: u64, len: u32) -> Packet {
        Packet::new(
            self.local,
            to,
            Body::Udp(UdpSegment {
                stream,
                seq,
                len,
                kind: UdpKind::Data,
            }),
        )
    }

    /// Data chunks sent (excluding retransmissions).
    pub fn sent_chunks(&self) -> u64 {
        self.sent_chunks
    }

    /// Chunks retransmitted in response to NAKs.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }
}

/// Client progress events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpClientEvent {
    /// All chunks received.
    Complete {
        /// Total chunks in the file.
        total_chunks: u64,
    },
}

/// Client half: requests a file, collects chunks, NAKs gaps.
#[derive(Debug, Clone)]
pub struct UdpFileClient {
    local: EndpointId,
    server: EndpointId,
    stream: u64,
    request: AppData,
    received: BTreeSet<u64>,
    total: Option<u64>,
    complete: bool,
    last_activity: SimTime,
    nak_interval: SimDuration,
    naks_sent: u64,
}

impl UdpFileClient {
    /// Creates a client for one transfer and returns the initial request
    /// packet. `request.b` must carry the file size in bytes.
    pub fn start(
        local: EndpointId,
        server: EndpointId,
        stream: u64,
        request: AppData,
        now: SimTime,
        nak_interval: SimDuration,
    ) -> (Self, Packet) {
        let client = UdpFileClient {
            local,
            server,
            stream,
            request,
            received: BTreeSet::new(),
            total: None,
            complete: false,
            last_activity: now,
            nak_interval,
            naks_sent: 0,
        };
        let pkt = client.request_packet();
        (client, pkt)
    }

    fn request_packet(&self) -> Packet {
        Packet::new(
            self.local,
            self.server,
            Body::Udp(UdpSegment {
                stream: self.stream,
                seq: 0,
                len: 100,
                kind: UdpKind::Request(self.request),
            }),
        )
    }

    /// Consumes one datagram; returns packets to send and events.
    pub fn on_datagram(
        &mut self,
        seg: &UdpSegment,
        now: SimTime,
    ) -> (Vec<Packet>, Vec<UdpClientEvent>) {
        if seg.stream != self.stream || self.complete {
            return (Vec::new(), Vec::new());
        }
        self.last_activity = now;
        match &seg.kind {
            UdpKind::Data => {
                self.received.insert(seg.seq);
            }
            UdpKind::Fin { total_chunks } => {
                self.total = Some(*total_chunks);
            }
            _ => {}
        }
        if let Some(total) = self.total {
            if self.received.len() as u64 >= total {
                self.complete = true;
                return (
                    Vec::new(),
                    vec![UdpClientEvent::Complete {
                        total_chunks: total,
                    }],
                );
            }
            // Fin seen but gaps remain: NAK immediately (fast recovery).
            if matches!(seg.kind, UdpKind::Fin { .. }) {
                return (self.nak_packets(total), Vec::new());
            }
        }
        (Vec::new(), Vec::new())
    }

    /// Timer tick: re-request on silence, re-NAK open gaps.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        if self.complete || now.saturating_duration_since(self.last_activity) < self.nak_interval {
            return Vec::new();
        }
        self.last_activity = now;
        match self.total {
            // No FIN yet: whether nothing or only part of the stream
            // arrived, silence means loss — re-issue the (idempotent)
            // request; duplicates are deduplicated by chunk seq.
            None => vec![self.request_packet()],
            Some(total) => self.nak_packets(total),
        }
    }

    fn nak_packets(&mut self, total: u64) -> Vec<Packet> {
        let missing: Vec<u64> = (0..total).filter(|i| !self.received.contains(i)).collect();
        if missing.is_empty() {
            return Vec::new();
        }
        self.naks_sent += 1;
        vec![Packet::new(
            self.local,
            self.server,
            Body::Udp(UdpSegment {
                stream: self.stream,
                seq: 0,
                len: 8 * missing.len() as u32 + 16,
                kind: UdpKind::Nak(missing),
            }),
        )]
    }

    /// `true` once every chunk has arrived.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// NAK packets sent so far.
    pub fn naks_sent(&self) -> u64 {
        self.naks_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn useg(p: &Packet) -> &UdpSegment {
        match p.body() {
            Body::Udp(s) => s,
            other => panic!("not udp: {other:?}"),
        }
    }

    #[test]
    fn lossless_transfer_completes_with_one_inbound_packet() {
        let now = SimTime::ZERO;
        let mut server = UdpFileServer::new(EndpointId(1));
        let req = AppData {
            kind: 0,
            a: 7,
            b: 10_000,
        };
        let (mut client, reqp) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            5,
            req,
            now,
            SimDuration::from_millis(50),
        );
        let stream = server.on_datagram(EndpointId(2), useg(&reqp));
        // ceil(10000/1448) = 7 chunks + FIN.
        assert_eq!(stream.len(), 8);
        let mut events = Vec::new();
        let mut outgoing = Vec::new();
        for p in &stream {
            let (pk, ev) = client.on_datagram(useg(p), now);
            outgoing.extend(pk);
            events.extend(ev);
        }
        assert!(client.is_complete());
        assert_eq!(events, vec![UdpClientEvent::Complete { total_chunks: 7 }]);
        assert!(outgoing.is_empty(), "no inbound packets beyond the request");
        assert_eq!(client.naks_sent(), 0);
    }

    #[test]
    fn lost_chunks_recovered_by_nak() {
        let now = SimTime::ZERO;
        let mut server = UdpFileServer::new(EndpointId(1));
        let req = AppData {
            kind: 0,
            a: 7,
            b: 5 * 1448,
        };
        let (mut client, reqp) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            5,
            req,
            now,
            SimDuration::from_millis(50),
        );
        let mut stream = server.on_datagram(EndpointId(2), useg(&reqp));
        // Drop chunks 1 and 3.
        stream.retain(|p| !matches!(useg(p).kind, UdpKind::Data) || ![1, 3].contains(&useg(p).seq));
        let mut naks = Vec::new();
        for p in &stream {
            let (pk, _) = client.on_datagram(useg(p), now);
            naks.extend(pk);
        }
        assert_eq!(naks.len(), 1, "one NAK listing both gaps");
        assert!(matches!(
            &useg(&naks[0]).kind,
            UdpKind::Nak(missing) if missing == &vec![1, 3]
        ));
        let retx = server.on_datagram(EndpointId(2), useg(&naks[0]));
        assert_eq!(retx.len(), 2);
        assert_eq!(server.retransmits(), 2);
        let mut done = Vec::new();
        for p in &retx {
            let (_, ev) = client.on_datagram(useg(p), now);
            done.extend(ev);
        }
        assert_eq!(done.len(), 1);
        assert!(client.is_complete());
    }

    #[test]
    fn lost_request_retried_on_tick() {
        let now = SimTime::ZERO;
        let req = AppData {
            kind: 0,
            a: 1,
            b: 1000,
        };
        let (mut client, _lost) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            5,
            req,
            now,
            SimDuration::from_millis(50),
        );
        assert!(client.on_tick(SimTime::from_millis(10)).is_empty());
        let retry = client.on_tick(SimTime::from_millis(60));
        assert_eq!(retry.len(), 1);
        assert!(matches!(useg(&retry[0]).kind, UdpKind::Request(_)));
    }

    #[test]
    fn lost_fin_recovered_by_tick_nak() {
        // FIN lost: client has all data but no total; tick does nothing
        // until... in this design the FIN carries the total, so the client
        // keeps waiting; when the FIN finally arrives late it completes.
        let now = SimTime::ZERO;
        let mut server = UdpFileServer::new(EndpointId(1));
        let req = AppData {
            kind: 0,
            a: 1,
            b: 2 * 1448,
        };
        let (mut client, reqp) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            9,
            req,
            now,
            SimDuration::from_millis(50),
        );
        let stream = server.on_datagram(EndpointId(2), useg(&reqp));
        for p in stream
            .iter()
            .filter(|p| matches!(useg(p).kind, UdpKind::Data))
        {
            client.on_datagram(useg(p), now);
        }
        assert!(!client.is_complete());
        // Late FIN arrives.
        let fin = stream.last().unwrap();
        let (_, ev) = client.on_datagram(useg(fin), SimTime::from_millis(80));
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn tiny_file_single_chunk() {
        let mut server = UdpFileServer::new(EndpointId(1));
        let req = AppData {
            kind: 0,
            a: 1,
            b: 10,
        };
        let (mut client, reqp) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            1,
            req,
            SimTime::ZERO,
            SimDuration::from_millis(50),
        );
        let stream = server.on_datagram(EndpointId(2), useg(&reqp));
        assert_eq!(stream.len(), 2); // 1 chunk + FIN
        for p in &stream {
            client.on_datagram(useg(p), SimTime::ZERO);
        }
        assert!(client.is_complete());
    }
}
