//! End-to-end disk-channel experiment: the leakage verdict must flip
//! from LEAKY (baseline, one replica) to TIGHT (StopWatch, three
//! replicas) on a fixed seed grid, and the attacker's arm-recovery
//! accuracy must collapse from near-certain to chance — the same shape
//! as `tests/cache_channel.rs`, for the third timing channel.

use harness::prelude::*;
use simkit::time::SimDuration;

/// A fixed 4-cell grid (defense arm x victim presence) over 3 seeds,
/// anchored on the clean baseline cell. The overrides are the channel's
/// physics: a rotating disk (the head-position signal), a Δd above its
/// worst-case access time, and a large image so the probe arms sit far
/// apart on the platter.
fn grid() -> SweepSpec {
    let mut spec = SweepSpec::new("disk-flip", "disk-channel")
        .axis("cfg.defense", &["baseline", "stopwatch"])
        .axis("victim", &["false", "true"])
        .seed_shards(42, 3);
    spec.base_params = vec![("rounds".to_string(), "12".to_string())];
    spec.base_overrides = vec![
        ("broadcast_band".to_string(), "off".to_string()),
        ("disk".to_string(), "rotating".to_string()),
        ("delta_d_ms".to_string(), "25".to_string()),
        ("image_blocks".to_string(), "16000000".to_string()),
    ];
    spec.duration = SimDuration::from_secs(120);
    spec
}

/// Builds the report with the leakage baseline anchored on `baseline` —
/// the observer's reference distribution. Unlike the cache channel
/// (where clean probes read the identical flat hit latency under every
/// arm), a disk probe's *clean* latency differs by arm by construction
/// (raw service times vs the flat Δd release), so each arm's victim cell
/// is judged against the clean cell of the **same** arm.
fn report(baseline: &str) -> SweepReport {
    let scenarios = grid().scenarios().expect("grid expands");
    let outcomes = run_scenarios(
        &scenarios,
        &RunnerOptions {
            threads: 2,
            progress: false,
        },
    );
    SweepReport::from_outcomes("disk-flip", &outcomes, Some(baseline))
}

fn verdict<'a>(r: &'a SweepReport, cell: &str) -> &'a LeakageVerdict {
    r.leakage
        .iter()
        .find(|v| v.cell == cell)
        .unwrap_or_else(|| panic!("no verdict for {cell:?} in {:?}", r.leakage))
}

fn cell<'a>(r: &'a SweepReport, name: &str) -> &'a CellAggregate {
    r.cells
        .iter()
        .find(|c| c.cell == name)
        .unwrap_or_else(|| panic!("no cell {name:?}"))
}

#[test]
fn leakage_verdict_flips_from_leaky_to_tight_with_replication() {
    // One replica (baseline): the victim's parked head and FIFO queueing
    // shift the probe-latency distribution — an observer distinguishes it
    // from the clean cell of the same arm.
    let r = report("cfg.defense=baseline,victim=false");
    assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    assert_eq!(r.cells.len(), 4, "2 arms x victim on/off");
    let leaky = verdict(&r, "cfg.defense=baseline,victim=true");
    assert!(
        leaky.distinguishable_at_95,
        "baseline + victim must be LEAKY: {leaky:?}"
    );
    assert!(leaky.ks_distance > 0.05, "victim shifts the KS distance");

    // Three replicas (StopWatch): every replica proposes the Δd release
    // point, the median ignores the one perturbed disk, and every probe
    // reads the identical flat latency — indistinguishable from the
    // protected clean cell.
    let r = report("cfg.defense=stopwatch,victim=false");
    let tight = verdict(&r, "cfg.defense=stopwatch,victim=true");
    assert!(
        !tight.distinguishable_at_95,
        "StopWatch + victim must be TIGHT: {tight:?}"
    );
    assert!(
        tight.ks_distance < 1e-9,
        "agreed release times are identical to clean: {tight:?}"
    );
}

#[test]
fn recovery_accuracy_degrades_toward_chance_as_replicas_grow() {
    let r = report("cfg.defense=baseline,victim=false");
    let acc = |name: &str| {
        let c = cell(&r, name);
        c.extra("recovered_rounds") / c.extra("probe_rounds")
    };
    let baseline = acc("cfg.defense=baseline,victim=true");
    let stopwatch = acc("cfg.defense=stopwatch,victim=true");
    let chance = 1.0 / 4.0;
    assert!(
        baseline >= 0.75,
        "1 replica: attacker recovers the secret arm most rounds ({baseline})"
    );
    assert!(
        stopwatch <= chance + 0.05,
        "3 replicas: accuracy at or below chance ({stopwatch} vs chance {chance})"
    );
    assert!(
        baseline - stopwatch > 0.4,
        "accuracy must collapse 1 -> 3 replicas ({baseline} -> {stopwatch})"
    );

    // Every cell ran all its rounds (the verdicts mean nothing on a
    // timed-out attacker).
    for c in &r.cells {
        assert_eq!(c.timeouts, 0, "cell {} timed out", c.cell);
        assert_eq!(c.completed, 3 * 12, "cell {} rounds", c.cell);
    }

    // The paper's Δd diagnostic: only the victim's host ever overruns the
    // release point, and only in the replicated arm is that visible as a
    // counted (but harmless) violation rather than a timing leak.
    let clean_sw = cell(&r, "cfg.defense=stopwatch,victim=false");
    assert_eq!(
        clean_sw.counters.get("dd_violations"),
        0,
        "clean disks never overrun a 25ms Δd"
    );
}
