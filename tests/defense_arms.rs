//! The pluggable defense-arm subsystem end to end: every registered arm
//! runs the timer-channel workload deterministically (byte-identical
//! sweep JSON across runner thread counts), and the Deterland epoch arm —
//! a single-host defense with no replication at all — flips the channel's
//! leakage verdict from LEAKY to TIGHT while the report prices its
//! latency cost against the undefended sibling cell.

use harness::prelude::*;
use simkit::time::SimDuration;

/// A (defense arm x victim presence) grid over the timer channel. The
/// timer deadlines sit on a grid the default 5 ms epoch divides, so the
/// arms' release rules are exercised exactly as documented.
fn arm_grid(arms: &[&str]) -> SweepSpec {
    let values: Vec<String> = arms.iter().map(|a| a.to_string()).collect();
    let mut spec = SweepSpec::new("defense-arms", "timer-channel")
        .axis("cfg.defense", &values)
        .axis("victim", &["false", "true"])
        .seed_shards(42, 3);
    spec.base_params = vec![("rounds".to_string(), "12".to_string())];
    spec.base_overrides = vec![
        ("broadcast_band".to_string(), "off".to_string()),
        ("disk".to_string(), "ssd".to_string()),
    ];
    spec.duration = SimDuration::from_secs(120);
    spec
}

fn report(arms: &[&str], threads: usize) -> SweepReport {
    let scenarios = arm_grid(arms).scenarios().expect("grid expands");
    let outcomes = run_scenarios(
        &scenarios,
        &RunnerOptions {
            threads,
            progress: false,
        },
    );
    SweepReport::from_outcomes("defense-arms", &outcomes, None)
}

/// The subsystem's determinism contract: one sweep covering **every**
/// registered arm renders byte-identical JSON on 1 and 8 runner threads.
/// A new arm is pulled into this test the moment it registers.
#[test]
fn every_registered_arm_is_thread_count_invariant() {
    let arms = vmm::defense::arm_names();
    let one = report(&arms, 1).to_json();
    let eight = report(&arms, 8).to_json();
    assert_eq!(one, eight, "1-thread vs 8-thread JSON");
    assert!(one.contains("\"failures\": []"), "runs were not vacuous");
    for arm in &arms {
        assert!(
            one.contains(&format!("\"defense\": \"{arm}\"")),
            "arm {arm} missing from the report"
        );
    }
}

/// The pinned cross-arm verdict: a non-StopWatch arm closes the channel.
/// Deterland releases every timer fire at the next epoch boundary, so the
/// victim's sub-epoch dispatch delays vanish — the victim cell reads
/// identical to the clean cell of the same arm — while the undefended
/// baseline stays distinguishable. The report also prices the arm: the
/// deterland cells carry an `overhead` block against their baseline
/// siblings.
#[test]
fn deterland_flips_the_timer_channel_from_leaky_to_tight_and_reports_overhead() {
    let r = report(&["baseline", "deterland"], 2);
    assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    let verdict = |cell: &str| {
        r.leakage
            .iter()
            .find(|v| v.cell == cell)
            .unwrap_or_else(|| panic!("no verdict for {cell:?} in {:?}", r.leakage))
    };

    let leaky = verdict("cfg.defense=baseline,victim=true");
    assert_eq!(leaky.baseline, "cfg.defense=baseline,victim=false");
    assert!(
        leaky.distinguishable_at_95,
        "undefended victim must be LEAKY: {leaky:?}"
    );

    let tight = verdict("cfg.defense=deterland,victim=true");
    assert_eq!(tight.baseline, "cfg.defense=deterland,victim=false");
    assert!(
        !tight.distinguishable_at_95,
        "deterland victim must be TIGHT: {tight:?}"
    );
    assert!(
        tight.ks_distance < 1e-9,
        "epoch releases are identical to clean: {tight:?}"
    );

    let cell = r
        .cells
        .iter()
        .find(|c| c.cell == "cfg.defense=deterland,victim=true")
        .expect("deterland victim cell");
    assert_eq!(cell.defense, "deterland");
    let overhead = cell.overhead.as_ref().expect("deterland cell is priced");
    assert_eq!(overhead.vs_cell, "cfg.defense=baseline,victim=true");
    assert!(overhead.throughput_ratio > 0.0);
    assert!(
        overhead.latency_p50_delta_ms > 0.0,
        "waiting for the epoch boundary costs latency: {overhead:?}"
    );
    let json = r.to_json();
    assert!(json.contains("\"overhead\""), "{json}");
    assert!(json.contains("\"defense\": \"deterland\""), "{json}");
}
