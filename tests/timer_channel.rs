//! End-to-end timer-channel experiment: the leakage verdict must flip
//! from LEAKY (baseline, one replica) to TIGHT (StopWatch, three and
//! five replicas) on a fixed seed grid, and the attacker's
//! burst-recovery accuracy must collapse from near-certain to chance —
//! the same shape as `tests/cache_channel.rs` and
//! `tests/disk_channel.rs`, for the fourth timing channel.

use harness::prelude::*;
use simkit::time::SimDuration;

/// A fixed 4-cell grid (defense arm x victim presence) over 3 seeds at
/// one replica count, anchored on the clean baseline cell. The channel
/// needs no exotic physics overrides: the signal is the vCPU scheduler
/// itself — the attacker's one-shot timers fire late by the victim's
/// timeslice whenever the victim's periodic burst holds the host.
fn grid(replicas: u64) -> SweepSpec {
    let mut spec = SweepSpec::new("timer-flip", "timer-channel")
        .axis("cfg.defense", &["baseline", "stopwatch"])
        .axis("victim", &["false", "true"])
        .seed_shards(42, 3);
    spec.base_params = vec![("rounds".to_string(), "12".to_string())];
    spec.base_overrides = vec![
        ("broadcast_band".to_string(), "off".to_string()),
        ("disk".to_string(), "ssd".to_string()),
        ("replicas".to_string(), replicas.to_string()),
    ];
    spec.duration = SimDuration::from_secs(120);
    spec
}

/// Builds the report with the leakage baseline anchored on `baseline` —
/// the observer's reference distribution. Like the disk channel, a
/// *clean* timer fire reads differently per arm by construction (raw
/// dispatch times vs the flat Δt release), so each arm's victim cell is
/// judged against the clean cell of the **same** arm.
fn report(replicas: u64, baseline: &str) -> SweepReport {
    let scenarios = grid(replicas).scenarios().expect("grid expands");
    let outcomes = run_scenarios(
        &scenarios,
        &RunnerOptions {
            threads: 2,
            progress: false,
        },
    );
    SweepReport::from_outcomes("timer-flip", &outcomes, Some(baseline))
}

fn verdict<'a>(r: &'a SweepReport, cell: &str) -> &'a LeakageVerdict {
    r.leakage
        .iter()
        .find(|v| v.cell == cell)
        .unwrap_or_else(|| panic!("no verdict for {cell:?} in {:?}", r.leakage))
}

fn cell<'a>(r: &'a SweepReport, name: &str) -> &'a CellAggregate {
    r.cells
        .iter()
        .find(|c| c.cell == name)
        .unwrap_or_else(|| panic!("no cell {name:?}"))
}

#[test]
fn leakage_verdict_flips_from_leaky_to_tight_with_replication() {
    // One replica (baseline): the victim's secret-phased compute burst
    // holds the host through one probe window per round, and that
    // window's timer fires a timeslice late — an observer distinguishes
    // the victim cell from the clean cell of the same arm.
    let r = report(3, "cfg.defense=baseline,victim=false");
    assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    assert_eq!(r.cells.len(), 4, "2 arms x victim on/off");
    let leaky = verdict(&r, "cfg.defense=baseline,victim=true");
    assert!(
        leaky.distinguishable_at_95,
        "baseline + victim must be LEAKY: {leaky:?}"
    );
    assert!(leaky.ks_distance > 0.05, "victim shifts the KS distance");

    // Three replicas (StopWatch): every replica proposes the programmed
    // deadline plus Δt, the median ignores the one contended host's
    // dispatch jitter, and every fire reads the identical flat release —
    // indistinguishable from the protected clean cell.
    let r = report(3, "cfg.defense=stopwatch,victim=false");
    let tight = verdict(&r, "cfg.defense=stopwatch,victim=true");
    assert!(
        !tight.distinguishable_at_95,
        "StopWatch + victim must be TIGHT: {tight:?}"
    );
    assert!(
        tight.ks_distance < 1e-9,
        "agreed release times are identical to clean: {tight:?}"
    );
}

#[test]
fn five_replicas_stay_tight_too() {
    let r = report(5, "cfg.defense=stopwatch,victim=false");
    assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    let tight = verdict(&r, "cfg.defense=stopwatch,victim=true");
    assert!(
        !tight.distinguishable_at_95,
        "5 replicas must stay TIGHT: {tight:?}"
    );
    assert!(tight.ks_distance < 1e-9, "{tight:?}");
    let c = cell(&r, "cfg.defense=stopwatch,victim=true");
    let acc = c.extra("recovered_rounds") / c.extra("probe_rounds");
    let chance = 1.0 / 4.0;
    assert!(
        acc <= chance + 0.05,
        "5 replicas: accuracy at or below chance ({acc} vs chance {chance})"
    );
}

#[test]
fn recovery_accuracy_degrades_toward_chance_as_replicas_grow() {
    let r = report(3, "cfg.defense=baseline,victim=false");
    let acc = |name: &str| {
        let c = cell(&r, name);
        c.extra("recovered_rounds") / c.extra("probe_rounds")
    };
    let baseline = acc("cfg.defense=baseline,victim=true");
    let stopwatch = acc("cfg.defense=stopwatch,victim=true");
    let chance = 1.0 / 4.0;
    assert!(
        baseline >= 0.75,
        "1 replica: attacker recovers the burst window most rounds ({baseline})"
    );
    assert!(
        stopwatch <= chance + 0.05,
        "3 replicas: accuracy at or below chance ({stopwatch} vs chance {chance})"
    );
    assert!(
        baseline - stopwatch > 0.4,
        "accuracy must collapse 1 -> 3 replicas ({baseline} -> {stopwatch})"
    );

    // Every cell ran all its rounds (the verdicts mean nothing on a
    // timed-out attacker).
    for c in &r.cells {
        assert_eq!(c.timeouts, 0, "cell {} timed out", c.cell);
        assert_eq!(c.completed, 3 * 12, "cell {} rounds", c.cell);
    }

    // The paper's Δt diagnostic: a 10ms Δt covers the worst-case 2ms
    // run-queue wait with room to spare, so no replica ever overruns its
    // release point — in either stopwatch cell.
    for name in [
        "cfg.defense=stopwatch,victim=false",
        "cfg.defense=stopwatch,victim=true",
    ] {
        assert_eq!(
            cell(&r, name).counters.get("dt_violations"),
            0,
            "Δt covers the dispatch latency in {name}"
        );
    }
    // And the contended cell really did exercise the scheduler: the
    // victim's bursts preempted attacker fires.
    let contended = cell(&r, "cfg.defense=stopwatch,victim=true");
    assert!(
        contended.counters.get("sched_preemptions") > 0,
        "victim bursts must contend the run queue"
    );
    assert!(contended.counters.get("vtimer_irq") > 0);
    assert!(contended.counters.get("timer_arms") > 0);
}

/// The harness determinism contract extended to the timer channel: the
/// sweep JSON is byte-identical across runner thread counts and across
/// the batched vs scalar-reference engine arms.
#[test]
fn timer_sweep_is_thread_count_and_engine_arm_invariant() {
    let json = |threads: usize, scalar_reference: bool| {
        let mut spec = SweepSpec::new("timer-det", "timer-channel")
            .axis("cfg.defense", &["baseline", "stopwatch"])
            .seed_shards(7, 2);
        spec.base_params = vec![
            ("rounds".to_string(), "8".to_string()),
            ("victim".to_string(), "true".to_string()),
        ];
        spec.base_overrides = vec![
            ("broadcast_band".to_string(), "off".to_string()),
            ("disk".to_string(), "ssd".to_string()),
        ];
        spec.duration = SimDuration::from_secs(60);
        spec.scalar_reference = scalar_reference;
        let scenarios = spec.scenarios().expect("spec expands");
        let outcomes = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads,
                progress: false,
            },
        );
        SweepReport::from_outcomes(&spec.name, &outcomes, None).to_json()
    };
    let one = json(1, false);
    assert_eq!(one, json(8, false), "1-thread vs 8-thread JSON");
    assert_eq!(one, json(2, true), "batched vs scalar-reference JSON");
    assert!(one.contains("\"failures\": []"), "runs were not vacuous");
    assert!(one.contains("\"vtimer_irq\""), "timer counters aggregated");
}

/// Satellite: the timer subsystem is inert for the legacy channels —
/// net-, cache-, and disk-channel runs arm no virtual timers, count no
/// timer IRQs or violations, and send no timer proposals. Together with
/// `tests/harness_determinism.rs` (whose byte-identity checks cover the
/// web and cache sweeps) this pins that wiring `ChannelKind::Timer`
/// changed nothing for existing traces.
#[test]
fn legacy_channels_report_zero_timer_activity() {
    for (workload, params, overrides) in [
        (
            "web-http",
            vec![("bytes", "20000"), ("downloads", "2")],
            vec![("disk", "ssd")],
        ),
        (
            "cache-channel",
            vec![("rounds", "8"), ("sets", "4"), ("victim", "true")],
            vec![("disk", "ssd")],
        ),
        (
            "disk-channel",
            vec![("rounds", "6"), ("victim", "true")],
            vec![
                ("disk", "rotating"),
                ("delta_d_ms", "25"),
                ("image_blocks", "16000000"),
            ],
        ),
    ] {
        let mut s = Scenario::new(workload, 42);
        s.workload_params = params
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        s.overrides = overrides
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        s.overrides
            .push(("broadcast_band".to_string(), "off".to_string()));
        s.duration = SimDuration::from_secs(120);
        let r = s.run().unwrap_or_else(|e| panic!("{workload}: {e}"));
        for counter in [
            "vtimer_irq",
            "timer_arms",
            "dt_violations",
            "timer_proposals_sent",
        ] {
            assert_eq!(
                r.counter(counter),
                0,
                "{workload} must not touch the timer channel ({counter})"
            );
        }
    }
}
