//! End-to-end cache-channel experiment: the leakage verdict must flip
//! from LEAKY (baseline, one replica) to TIGHT (StopWatch, three
//! replicas) on a fixed seed grid, and the attacker's set-recovery
//! accuracy must collapse from near-certain to chance.

use harness::prelude::*;
use simkit::time::SimDuration;

/// A fixed 4-cell grid (defense arm x victim presence) over 3 seeds,
/// anchored on the clean baseline cell.
fn grid() -> SweepSpec {
    let mut spec = SweepSpec::new("cache-flip", "cache-channel")
        .axis("cfg.defense", &["baseline", "stopwatch"])
        .axis("victim", &["false", "true"])
        .seed_shards(42, 3);
    spec.base_params = vec![
        ("rounds".to_string(), "40".to_string()),
        ("sets".to_string(), "4".to_string()),
        ("ways".to_string(), "2".to_string()),
        ("secret".to_string(), "2".to_string()),
    ];
    spec.base_overrides = vec![
        ("broadcast_band".to_string(), "off".to_string()),
        ("disk".to_string(), "ssd".to_string()),
    ];
    spec.duration = SimDuration::from_secs(120);
    spec
}

fn report() -> SweepReport {
    let scenarios = grid().scenarios().expect("grid expands");
    let outcomes = run_scenarios(
        &scenarios,
        &RunnerOptions {
            threads: 2,
            progress: false,
        },
    );
    SweepReport::from_outcomes(
        "cache-flip",
        &outcomes,
        Some("cfg.defense=baseline,victim=false"),
    )
}

fn verdict<'a>(r: &'a SweepReport, cell: &str) -> &'a LeakageVerdict {
    r.leakage
        .iter()
        .find(|v| v.cell == cell)
        .unwrap_or_else(|| panic!("no verdict for {cell:?} in {:?}", r.leakage))
}

fn cell<'a>(r: &'a SweepReport, name: &str) -> &'a CellAggregate {
    r.cells
        .iter()
        .find(|c| c.cell == name)
        .unwrap_or_else(|| panic!("no cell {name:?}"))
}

#[test]
fn leakage_verdict_flips_from_leaky_to_tight_with_replication() {
    let r = report();
    assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    assert_eq!(r.cells.len(), 4, "2 arms x victim on/off");

    // One replica (baseline): the victim's evictions shift the probe
    // latency distribution — an observer distinguishes it from clean.
    let leaky = verdict(&r, "cfg.defense=baseline,victim=true");
    assert!(
        leaky.distinguishable_at_95,
        "baseline + victim must be LEAKY: {leaky:?}"
    );
    assert!(leaky.ks_distance > 0.05, "victim shifts the KS distance");

    // Three replicas (StopWatch): the median readout hides the one
    // perturbed replica — indistinguishable from the clean cell.
    let tight = verdict(&r, "cfg.defense=stopwatch,victim=true");
    assert!(
        !tight.distinguishable_at_95,
        "StopWatch + victim must be TIGHT: {tight:?}"
    );
    assert!(
        tight.ks_distance < 1e-9,
        "median readout is identical to clean: {tight:?}"
    );
}

#[test]
fn recovery_accuracy_degrades_toward_chance_as_replicas_grow() {
    let r = report();
    let acc = |name: &str| {
        let c = cell(&r, name);
        c.extra("recovered_rounds") / c.extra("probe_rounds")
    };
    let baseline = acc("cfg.defense=baseline,victim=true");
    let stopwatch = acc("cfg.defense=stopwatch,victim=true");
    let chance = 1.0 / 4.0;
    assert!(
        baseline >= 0.9,
        "1 replica: attacker recovers the secret set ({baseline})"
    );
    assert!(
        stopwatch <= chance + 0.05,
        "3 replicas: accuracy at or below chance ({stopwatch} vs chance {chance})"
    );
    assert!(
        baseline - stopwatch > 0.5,
        "accuracy must collapse 1 -> 3 replicas ({baseline} -> {stopwatch})"
    );

    // Every cell ran all its rounds (the verdicts mean nothing on a
    // timed-out attacker).
    for c in &r.cells {
        assert_eq!(c.timeouts, 0, "cell {} timed out", c.cell);
        assert_eq!(c.completed, 3 * 40, "cell {} rounds", c.cell);
    }
}
