//! Property tests for the transport substrates under adversarial loss and
//! for the detection machinery's monotonicity — the pieces the evaluation
//! figures silently rely on.

use netsim::packet::{AppData, Body, Packet};
use netsim::tcp::{TcpConfig, TcpEndpoint, TcpEvent};
use netsim::udp::{UdpFileClient, UdpFileServer};
use proptest::prelude::*;
use simkit::time::{SimDuration, SimTime};
use stopwatch_repro::prelude::*;

fn tcp_seg(p: &Packet) -> &netsim::packet::TcpSegment {
    match p.body() {
        Body::Tcp(s) => s,
        other => panic!("not tcp: {other:?}"),
    }
}

fn udp_seg(p: &Packet) -> &netsim::packet::UdpSegment {
    match p.body() {
        Body::Udp(s) => s,
        other => panic!("not udp: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TCP-lite delivers the whole stream in order under arbitrary packet
    /// loss, recovering via RTO go-back-N.
    #[test]
    fn tcp_survives_random_loss(
        total_kb in 1u64..40,
        loss_seed in 0u64..500,
        loss_prob in 0.0f64..0.3,
    ) {
        let total = total_kb * 1024;
        let cfg = TcpConfig::default();
        let mut now = SimTime::ZERO;
        let (mut client, syn) =
            TcpEndpoint::client(cfg, 1, EndpointId(1), EndpointId(2), now);
        let mut server = TcpEndpoint::server(cfg, 1, EndpointId(2), EndpointId(1), now);
        let mut rng = SimRng::new(loss_seed).stream("loss");
        let mut to_server = vec![syn];
        let mut to_client: Vec<Packet> = Vec::new();
        let mut started = false;
        let mut finished = false;
        // Drive rounds of exchange; each round advances time so RTOs fire.
        for _round in 0..400 {
            if finished {
                break;
            }
            for p in std::mem::take(&mut to_server) {
                if rng.chance(loss_prob) {
                    continue; // lost
                }
                let out = server.on_segment(tcp_seg(&p), now);
                to_client.extend(out.packets);
                for ev in out.events {
                    if matches!(ev, TcpEvent::Connected) && !started {
                        started = true;
                        to_client.extend(server.send_stream(total, None, true));
                    }
                }
            }
            for p in std::mem::take(&mut to_client) {
                if rng.chance(loss_prob) {
                    continue;
                }
                let out = client.on_segment(tcp_seg(&p), now);
                to_server.extend(out.packets);
                for ev in out.events {
                    if let TcpEvent::PeerFinished { total: t } = ev {
                        prop_assert_eq!(t, total);
                        finished = true;
                    }
                }
            }
            now += SimDuration::from_millis(60);
            to_server.extend(client.on_tick(now));
            to_client.extend(server.on_tick(now));
        }
        prop_assert!(finished, "stream of {total} bytes never completed");
    }

    /// UDP-NAK transfers complete under random loss of data chunks and the
    /// FIN, via NAKs and the client's re-request timer.
    #[test]
    fn udp_nak_survives_random_loss(
        chunks in 1u64..60,
        loss_seed in 0u64..500,
        loss_prob in 0.0f64..0.3,
    ) {
        let bytes = chunks * 1448;
        let mut now = SimTime::ZERO;
        let mut server = UdpFileServer::new(EndpointId(1));
        let req = AppData { kind: 1, a: 0, b: bytes };
        let (mut client, first) = UdpFileClient::start(
            EndpointId(2),
            EndpointId(1),
            9,
            req,
            now,
            SimDuration::from_millis(40),
        );
        let mut rng = SimRng::new(loss_seed).stream("loss");
        let mut to_server = vec![first];
        let mut to_client: Vec<Packet> = Vec::new();
        for _round in 0..400 {
            if client.is_complete() {
                break;
            }
            for p in std::mem::take(&mut to_server) {
                if rng.chance(loss_prob) {
                    continue;
                }
                to_client.extend(server.on_datagram(EndpointId(2), udp_seg(&p)));
            }
            for p in std::mem::take(&mut to_client) {
                if rng.chance(loss_prob) {
                    continue;
                }
                let (pk, _) = client.on_datagram(udp_seg(&p), now);
                to_server.extend(pk);
            }
            now += SimDuration::from_millis(50);
            to_server.extend(client.on_tick(now));
        }
        prop_assert!(client.is_complete(), "transfer of {chunks} chunks never completed");
    }

    /// Detection hardness is monotone in victim distinctiveness: the closer
    /// λ′ is to λ, the more observations the attacker needs — with and
    /// without StopWatch.
    #[test]
    fn detection_monotone_in_distinctiveness(step in 1usize..8) {
        let lps = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
        let lp_far = lps[step - 1];
        let lp_near = lps[step];
        let obs = |lp: f64| {
            let base = Exponential::new(1.0);
            let victim = Exponential::new(lp);
            let null = OrderStat::median_of_three(base, base, base);
            let alt = OrderStat::median_of_three(victim, base, base);
            Detector::from_cdfs(&null, &alt, 10).observations_needed(0.95)
        };
        prop_assert!(obs(lp_near) >= obs(lp_far));
    }

    /// The Δn sizing rule is monotone: a higher desync-probability target
    /// needs a larger Δ, and more-distinct victims need larger Δ.
    #[test]
    fn delta_sizing_monotone(l2 in 0.1f64..0.95, p_lo in 0.9f64..0.99) {
        use timestats::noise::delta_for_desync_prob;
        let p_hi = p_lo + 0.009;
        let d_lo = delta_for_desync_prob(1.0, l2, p_lo);
        let d_hi = delta_for_desync_prob(1.0, l2, p_hi);
        prop_assert!(d_hi >= d_lo);
    }
}

#[test]
fn platform_clocks_all_derive_from_one_instant() {
    // PIT / TSC / RTC must be mutually consistent views of the same time
    // source — the property that makes "intervene on virt" sufficient.
    use vmm::devices::PlatformClocks;
    let c = PlatformClocks::default();
    for ms in [0u64, 4, 999, 1000, 12_345] {
        let t = VirtNanos::from_millis(ms);
        assert_eq!(c.pit_ticks(t), ms / 4, "pit at {ms}ms");
        assert_eq!(c.rtc_secs(t), ms / 1000, "rtc at {ms}ms");
        let tsc_ms = c.rdtsc(t) as f64 / (3.0e6);
        assert!((tsc_ms - ms as f64).abs() < 1e-6, "tsc at {ms}ms");
    }
}

#[test]
fn attacker_cannot_read_real_time_under_stopwatch() {
    // A guest under contention runs slower in real time; its virtual clock
    // must not reveal that. We check that two replicas at different host
    // speeds report the same virtual clock at the same branch count.
    use storage::DiskImage;
    use vmm::clock::VirtualClock;
    use vmm::devices::PlatformClocks;
    use vmm::slot::{DefenseMode, GuestSlot, SlotConfig};

    let cfg = SlotConfig {
        endpoint: EndpointId(7),
        exit_every: 50_000,
        mode: DefenseMode::stop_watch(
            VirtOffset::from_millis(10),
            VirtOffset::from_millis(10),
            VirtOffset::from_millis(10),
            3,
        ),
        clocks: PlatformClocks::default(),
    };
    let clock = VirtualClock::new(VirtNanos::ZERO, 1.0, None);
    let fast = SpeedProfile::new(
        1.2e9,
        0.0,
        SimDuration::from_millis(10),
        SimRng::new(1).stream("f"),
    );
    let slow = SpeedProfile::new(
        0.8e9,
        0.0,
        SimDuration::from_millis(10),
        SimRng::new(1).stream("s"),
    );
    let mk = || {
        GuestSlot::new(
            Box::new(IdleGuest),
            cfg.clone(),
            clock.clone(),
            DiskImage::new(16),
        )
    };
    let a = mk();
    let b = mk();
    // Same branch count reached at very different real times...
    let t_fast = fast.time_for_branches(SimTime::ZERO, 100_000_000);
    let t_slow = slow.time_for_branches(SimTime::ZERO, 100_000_000);
    assert!(t_slow.as_secs_f64() / t_fast.as_secs_f64() > 1.4);
    // ...but (within float round-off of the branch/time inversion)
    // identical virtual time: the clock depends only on branches.
    let va = a.virt_at(&fast, t_fast).as_nanos() as i64;
    let vb = b.virt_at(&slow, t_slow).as_nanos() as i64;
    assert!((va - vb).abs() < 1000, "virt gap {} ns", (va - vb).abs());
}
