//! Integration of the Sec. VIII placement machinery with the running
//! cloud: VMs placed by the planner actually run, with the coresidency
//! constraints holding by construction.

use std::any::Any;
use stopwatch_repro::prelude::*;

struct Echo;
impl GuestProgram for Echo {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}
    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        if let Body::Raw { tag, len } = *packet.body() {
            env.send(packet.src(), Body::Raw { tag: tag + 1, len });
        }
    }
    fn on_disk_done(
        &mut self,
        _op: storage::device::DiskOp,
        _r: BlockRange,
        _d: &[u64],
        _env: &mut GuestEnv,
    ) {
    }
}

struct OnePing {
    me: EndpointId,
    server: EndpointId,
    got: bool,
    sent: bool,
}
impl ClientApp for OnePing {
    fn on_start(&mut self, _now: SimTime) -> Vec<Packet> {
        self.sent = true;
        vec![Packet::new(
            self.me,
            self.server,
            Body::Raw { tag: 1, len: 40 },
        )]
    }
    fn on_packet(&mut self, _p: &Packet, _now: SimTime) -> Vec<Packet> {
        self.got = true;
        Vec::new()
    }
    fn on_tick(&mut self, _now: SimTime) -> Vec<Packet> {
        Vec::new()
    }
    fn is_done(&self) -> bool {
        self.got
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn planner_placements_run_as_a_cloud() {
    // A 9-machine cloud with capacity 2: Theorem 2 places 4 VMs.
    let mut planner = PlacementPlanner::new(9, 2, Strategy::Bose).expect("planner");
    let placed = planner.place_all();
    assert_eq!(placed, 4);
    planner.validate().expect("valid placement");

    let mut cfg = CloudConfig::fast_test();
    cfg.seed = 21;
    let mut b = CloudBuilder::new(cfg, 9);
    let mut handles = Vec::new();
    for tri in planner.placed() {
        let hosts: Vec<usize> = tri.nodes().iter().map(|n| n.0).collect();
        handles.push(b.add_stopwatch_vm(&hosts, || Box::new(Echo)));
    }
    let mut clients = Vec::new();
    for (i, vm) in handles.iter().enumerate() {
        clients.push(b.add_client(Box::new(OnePing {
            me: EndpointId(2000 + i as u64),
            server: vm.endpoint,
            got: false,
            sent: false,
        })));
    }
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(10));
    for (i, c) in clients.into_iter().enumerate() {
        assert!(
            sim.cloud.client_app::<OnePing>(c).unwrap().got,
            "VM {i} never answered"
        );
    }
    assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
    // Every VM's replicas delivered identically.
    for vm in handles {
        let l0 = sim.cloud.delivered_log(vm, 0);
        for r in 1..3 {
            assert_eq!(l0, sim.cloud.delivered_log(vm, r), "vm {}", vm.index);
        }
    }
}

#[test]
fn coresidency_constraint_limits_shared_hosts() {
    // Any two placed VMs share at most one machine (edge-disjointness),
    // the property the whole security argument needs.
    let mut planner = PlacementPlanner::new(15, 7, Strategy::Bose).expect("planner");
    planner.place_all();
    let placed = planner.placed();
    for (i, a) in placed.iter().enumerate() {
        for b in placed.iter().skip(i + 1) {
            let shared = a.nodes().iter().filter(|n| b.nodes().contains(n)).count();
            assert!(shared <= 1, "{a} and {b} share {shared} machines");
        }
    }
}
