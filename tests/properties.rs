//! Property-based tests (proptest) on the core invariants that the
//! paper's security argument rests on.

use proptest::prelude::*;
use stopwatch_repro::prelude::*;
use timestats::ks::median_attenuation;
use timestats::median3;
use timestats::order_stats::order_stat_cdf_at;

proptest! {
    /// Theorem 3: the median of three strictly attenuates the KS distance
    /// whenever the two baseline components overlap — for arbitrary
    /// exponential rate pairs.
    #[test]
    fn theorem3_attenuation(
        lambda in 0.2f64..4.0,
        ratio in 0.05f64..0.95,
        f2_rate in 0.2f64..4.0,
        f3_rate in 0.2f64..4.0,
    ) {
        let base = Exponential::new(lambda);
        let victim = Exponential::new(lambda * ratio);
        let f2 = Exponential::new(f2_rate);
        let f3 = Exponential::new(f3_rate);
        let (med, raw) = median_attenuation(&base, &victim, &f2, &f3);
        prop_assert!(med < raw + 1e-9, "median {med} vs raw {raw}");
    }

    /// Theorem 4: with identically distributed second and third components
    /// the attenuation factor is at most 1/2.
    #[test]
    fn theorem4_half_bound(lambda in 0.2f64..4.0, ratio in 0.05f64..0.95) {
        let base = Exponential::new(lambda);
        let victim = Exponential::new(lambda * ratio);
        let (med, raw) = median_attenuation(&base, &victim, &base, &base);
        prop_assert!(med <= 0.5 * raw + 1e-6, "median {med} vs half of {raw}");
    }

    /// The general order-statistic CDF is a valid CDF value and agrees with
    /// the min/max closed forms.
    #[test]
    fn order_stat_cdf_valid(vals in prop::collection::vec(0.0f64..=1.0, 1..7)) {
        let m = vals.len();
        let mut prev = 1.0f64;
        for r in 1..=m {
            let f = order_stat_cdf_at(&vals, r);
            prop_assert!((0.0..=1.0).contains(&f));
            // F_{r:m} is non-increasing in r at a fixed point.
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
        let min_f = 1.0 - vals.iter().map(|v| 1.0 - v).product::<f64>();
        let max_f: f64 = vals.iter().product();
        prop_assert!((order_stat_cdf_at(&vals, 1) - min_f).abs() < 1e-9);
        prop_assert!((order_stat_cdf_at(&vals, m) - max_f).abs() < 1e-9);
    }

    /// median3 returns one of its inputs, bounded by min and max — the
    /// property that makes the runtime median agreement safe: the adopted
    /// delivery time is always some replica's proposal.
    #[test]
    fn median3_is_a_proposal(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let m = median3(a, b, c);
        prop_assert!([a, b, c].contains(&m));
        prop_assert!(m >= a.min(b).min(c));
        prop_assert!(m <= a.max(b).max(c));
    }

    /// One outlier proposal cannot move the median outside the other two
    /// values' range (the defense against a victim-influenced replica).
    #[test]
    fn median3_outlier_resistance(honest1 in 0u64..1000, honest2 in 0u64..1000, outlier in 0u64..u64::MAX) {
        let m = median3(honest1, honest2, outlier);
        let lo = honest1.min(honest2);
        let hi = honest1.max(honest2);
        prop_assert!(m >= lo && m <= hi);
    }

    /// Virtual clocks with identical epoch updates stay identical, and
    /// virtual time is monotone, for arbitrary update sequences.
    #[test]
    fn virtual_clock_epochs_deterministic(
        updates in prop::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..12)
    ) {
        let cfg = EpochConfig { interval_instr: 100_000, slope_min: 0.25, slope_max: 4.0 };
        let mut a = VirtualClock::new(VirtNanos::from_nanos(500), 1.0, Some(cfg));
        let mut b = a.clone();
        let mut instr = 0u64;
        let mut last = VirtNanos::ZERO;
        for (r, d) in updates {
            instr += 100_000;
            let v = a.virt(instr);
            prop_assert!(v >= last, "monotone across epochs");
            last = v;
            a.apply_epoch(SimTime::from_nanos(r), SimDuration::from_nanos(d));
            b.apply_epoch(SimTime::from_nanos(r), SimDuration::from_nanos(d));
            prop_assert_eq!(a.virt(instr + 50_000), b.virt(instr + 50_000));
        }
    }

    /// Speed profiles: branch/time conversion round-trips within a couple
    /// of branches for arbitrary jitter and offsets.
    #[test]
    fn speed_profile_roundtrip(
        jitter in 0.0f64..0.2,
        start_us in 0u64..100_000,
        branches in 1u64..200_000_000,
        seed in 0u64..1000,
    ) {
        let p = SpeedProfile::new(
            1.0e9,
            jitter,
            SimDuration::from_millis(10),
            SimRng::new(seed).stream("h"),
        );
        let t0 = SimTime::from_micros(start_us);
        let t1 = p.time_for_branches(t0, branches);
        let measured = p.branches_between(t0, t1);
        prop_assert!(measured.abs_diff(branches) <= 2, "{measured} vs {branches}");
    }

    /// Greedy placements are always valid for arbitrary cloud shapes.
    #[test]
    fn greedy_placement_always_valid(n in 3usize..24, cap in 1usize..8, seed in 0u64..50) {
        let placed = greedy_packing(n, cap, seed);
        prop_assert!(validate_placement(&placed, n, cap).is_ok());
    }

    /// Bose/Theorem-2 placements hit their promised count and validate,
    /// for every legal (n, c).
    #[test]
    fn bose_placement_promise(v in 1usize..6, c_raw in 1usize..16) {
        let n = 6 * v + 3;
        let c = (c_raw % ((n - 1) / 2)).max(1);
        let sys = BoseSystem::new(n).unwrap();
        let placement = sys.theorem2_placement(c).unwrap();
        prop_assert_eq!(placement.len(), sys.theorem2_count(c));
        prop_assert!(validate_placement(&placement, n, c).is_ok());
    }

    /// PGM delivers every payload in order under arbitrary loss patterns,
    /// once NAK retransmissions are drained.
    #[test]
    fn pgm_reliable_under_loss(loss_mask in prop::collection::vec(any::<bool>(), 1..40)) {
        let mut tx = PgmSender::new(256);
        let mut rx = PgmReceiver::new();
        let n = loss_mask.len();
        let mut delivered: Vec<usize> = Vec::new();
        for (i, lost) in loss_mask.iter().enumerate() {
            let pkt = tx.send(i);
            if !*lost {
                let out = rx.on_packet(pkt);
                delivered.extend(out.delivered);
                // NAKs answered immediately (the cloud does this over links).
                for retx in tx.on_nak(&out.nak_missing) {
                    delivered.extend(rx.on_packet(retx).delivered);
                }
            }
        }
        // Drain remaining gaps via the periodic NAK path.
        for _ in 0..n {
            let naks = rx.pending_naks();
            if naks.is_empty() {
                break;
            }
            for retx in tx.on_nak(&naks) {
                delivered.extend(rx.on_packet(retx).delivered);
            }
        }
        // Everything except a possibly-lost tail (no later packet revealed
        // the gap) is delivered in order.
        let tail_delivered = delivered.len();
        prop_assert!(delivered.iter().copied().eq(0..tail_delivered));
        // If the last send was received, everything must have arrived.
        if !loss_mask[n - 1] {
            prop_assert_eq!(tail_delivered, n);
        }
    }
}

/// A guest that opens one pending entry on each guest-initiated channel
/// at boot: a primed cache probe, a disk read, and a one-shot virtual
/// timer.
struct OpenerGuest;

impl GuestProgram for OpenerGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.cache_touch(3, 1);
        env.cache_probe(3, 1);
        env.disk_read(BlockRange::new(0, 4));
        env.set_timer(1, VirtNanos::from_millis(5));
    }
    fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
    fn on_disk_done(
        &mut self,
        _op: storage::DiskOp,
        _r: BlockRange,
        _d: &[u64],
        _env: &mut GuestEnv,
    ) {
    }
}

proptest! {
    /// The early-proposal buffer contract of [`ChannelPolicy::buffer_early`],
    /// across every [`ChannelKind`]: a peer proposal arriving before this
    /// replica opens the matching entry is *buffered then consumed* on the
    /// guest-initiated channels (cache, disk, timer — their local open is
    /// guaranteed by replica determinism), *dropped* on the externally
    /// opened net channel, and dropped when the entry was already opened
    /// and retired — the buffer never leaks an entry past the agreement
    /// that should consume it.
    #[test]
    fn early_peer_proposals_buffer_or_drop_per_policy_and_never_leak(
        five_replicas in any::<bool>(),
        peers_raw in 1usize..5,
        cache_ms in 1u64..40,
        disk_ms in 1u64..40,
        timer_ms in 1u64..40,
    ) {
        let needed = if five_replicas { 5 } else { 3 };
        let peers = peers_raw.min(needed - 1);
        let p = SpeedProfile::new(
            1.0e9,
            0.0,
            SimDuration::from_millis(10),
            SimRng::new(1).stream("h"),
        );
        let mut cache = CacheModel::new(8, 2);
        let cfg = SlotConfig {
            endpoint: EndpointId(7),
            exit_every: 50_000,
            mode: DefenseMode::stop_watch(
                VirtOffset::from_millis(10),
                VirtOffset::from_millis(10),
                VirtOffset::from_millis(10),
                needed,
            ),
            clocks: PlatformClocks::default(),
        };
        let mut slot = GuestSlot::new(
            Box::new(OpenerGuest),
            cfg,
            VirtualClock::new(VirtNanos::ZERO, 1.0, None),
            DiskImage::new(1 << 20),
        );

        // Pre-open peer proposals for event 0 of every kind. The three
        // guest-initiated kinds buffer them; net drops its stray (the
        // opening packet may never arrive on a lossy fabric).
        let t0 = SimTime::ZERO;
        let early = [
            (ChannelKind::Cache, cache_ms),
            (ChannelKind::Disk, disk_ms),
            (ChannelKind::Timer, timer_ms),
        ];
        for &(kind, ms) in &early {
            for peer in 0..peers {
                let v = VirtNanos::from_millis(ms) + VirtOffset::from_nanos(peer as u64);
                prop_assert!(!slot.add_proposal(&p, t0, kind, 0, v));
            }
        }
        prop_assert!(!slot.add_proposal(&p, t0, ChannelKind::Net, 0, VirtNanos::from_millis(7)));
        prop_assert_eq!(slot.early_buffered(), 3 * peers, "net stray dropped, rest held");

        // Boot: every entry opens, draining the buffer into the pending
        // table — nothing may remain buffered once the opens happened.
        let out = slot.boot(&p, &mut cache, t0).expect("boot");
        prop_assert_eq!(slot.early_buffered(), 0, "opens must drain the buffer");

        // Complete each agreement: our own proposal plus however many
        // straggler peers the replica count still requires.
        let mut own: Vec<(ChannelKind, u64, VirtNanos)> = out
            .iter()
            .filter_map(|o| match o {
                SlotOutput::Proposal { kind, seq, proposal } => Some((*kind, *seq, *proposal)),
                _ => None,
            })
            .collect();
        prop_assert_eq!(own.len(), 1, "boot proposes the cache probe: {:?}", own);
        let op_id = out
            .iter()
            .find_map(|o| match o {
                SlotOutput::DiskSubmit { op_id, .. } => Some(*op_id),
                _ => None,
            })
            .expect("disk submit");
        let t_disk = SimTime::from_millis(3);
        match slot.disk_ready(&p, t_disk, op_id).expect("known op") {
            ArrivalOutcome::Proposal(v) => own.push((ChannelKind::Disk, op_id, v)),
            other => prop_assert!(false, "stopwatch disk must propose: {other:?}"),
        }
        let t_fire = SimTime::from_millis(6);
        match slot
            .timer_elapsed(&p, t_fire, 0, VirtOffset::from_nanos(0))
            .expect("known fire")
        {
            Some(ArrivalOutcome::Proposal(v)) => own.push((ChannelKind::Timer, 0, v)),
            other => prop_assert!(false, "stopwatch timer must propose: {other:?}"),
        }
        let mut t = t_fire;
        for &(kind, seq, v) in &own {
            slot.add_proposal(&p, t, kind, seq, v);
            for straggler in 0..(needed - 1 - peers) {
                slot.add_proposal(
                    &p,
                    t,
                    kind,
                    seq,
                    v + VirtOffset::from_nanos(straggler as u64),
                );
            }
        }

        // Drain deliveries; every interrupt must reach the guest.
        while let Some(wake) = slot.next_wake(&p, t) {
            t = t.max(wake);
            slot.process(&p, &mut cache, t).expect("process");
        }
        prop_assert_eq!(slot.counters().get("cache_irq"), 1);
        prop_assert_eq!(slot.counters().get("disk_irq"), 1);
        prop_assert_eq!(slot.counters().get("vtimer_irq"), 1);
        prop_assert_eq!(slot.early_buffered(), 0, "consumed, not leaked");

        // Strays for the already-retired event 0 of every kind (an id
        // below the allocation cursor) must be dropped, not re-buffered.
        for &(kind, ms) in &early {
            slot.add_proposal(&p, t, kind, 0, VirtNanos::from_millis(ms));
        }
        prop_assert_eq!(slot.early_buffered(), 0, "retired ids never re-buffer");
    }
}

#[test]
fn detector_needs_more_observations_under_median() {
    // Deterministic spot-check of the headline security property across a
    // grid of victim distinctiveness values.
    for lp in [0.3, 0.5, 0.7, 10.0 / 11.0] {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(lp);
        let raw = Detector::from_cdfs(&base, &victim, 10);
        let m_null = OrderStat::median_of_three(base, base, base);
        let m_alt = OrderStat::median_of_three(victim, base, base);
        let med = Detector::from_cdfs(&m_null, &m_alt, 10);
        for c in [0.8, 0.95] {
            assert!(
                med.observations_needed(c) > raw.observations_needed(c),
                "lp={lp} c={c}"
            );
        }
    }
}
