//! Property-based tests (proptest) on the core invariants that the
//! paper's security argument rests on.

use proptest::prelude::*;
use stopwatch_repro::prelude::*;
use timestats::ks::median_attenuation;
use timestats::median3;
use timestats::order_stats::order_stat_cdf_at;

proptest! {
    /// Theorem 3: the median of three strictly attenuates the KS distance
    /// whenever the two baseline components overlap — for arbitrary
    /// exponential rate pairs.
    #[test]
    fn theorem3_attenuation(
        lambda in 0.2f64..4.0,
        ratio in 0.05f64..0.95,
        f2_rate in 0.2f64..4.0,
        f3_rate in 0.2f64..4.0,
    ) {
        let base = Exponential::new(lambda);
        let victim = Exponential::new(lambda * ratio);
        let f2 = Exponential::new(f2_rate);
        let f3 = Exponential::new(f3_rate);
        let (med, raw) = median_attenuation(&base, &victim, &f2, &f3);
        prop_assert!(med < raw + 1e-9, "median {med} vs raw {raw}");
    }

    /// Theorem 4: with identically distributed second and third components
    /// the attenuation factor is at most 1/2.
    #[test]
    fn theorem4_half_bound(lambda in 0.2f64..4.0, ratio in 0.05f64..0.95) {
        let base = Exponential::new(lambda);
        let victim = Exponential::new(lambda * ratio);
        let (med, raw) = median_attenuation(&base, &victim, &base, &base);
        prop_assert!(med <= 0.5 * raw + 1e-6, "median {med} vs half of {raw}");
    }

    /// The general order-statistic CDF is a valid CDF value and agrees with
    /// the min/max closed forms.
    #[test]
    fn order_stat_cdf_valid(vals in prop::collection::vec(0.0f64..=1.0, 1..7)) {
        let m = vals.len();
        let mut prev = 1.0f64;
        for r in 1..=m {
            let f = order_stat_cdf_at(&vals, r);
            prop_assert!((0.0..=1.0).contains(&f));
            // F_{r:m} is non-increasing in r at a fixed point.
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
        let min_f = 1.0 - vals.iter().map(|v| 1.0 - v).product::<f64>();
        let max_f: f64 = vals.iter().product();
        prop_assert!((order_stat_cdf_at(&vals, 1) - min_f).abs() < 1e-9);
        prop_assert!((order_stat_cdf_at(&vals, m) - max_f).abs() < 1e-9);
    }

    /// median3 returns one of its inputs, bounded by min and max — the
    /// property that makes the runtime median agreement safe: the adopted
    /// delivery time is always some replica's proposal.
    #[test]
    fn median3_is_a_proposal(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let m = median3(a, b, c);
        prop_assert!([a, b, c].contains(&m));
        prop_assert!(m >= a.min(b).min(c));
        prop_assert!(m <= a.max(b).max(c));
    }

    /// One outlier proposal cannot move the median outside the other two
    /// values' range (the defense against a victim-influenced replica).
    #[test]
    fn median3_outlier_resistance(honest1 in 0u64..1000, honest2 in 0u64..1000, outlier in 0u64..u64::MAX) {
        let m = median3(honest1, honest2, outlier);
        let lo = honest1.min(honest2);
        let hi = honest1.max(honest2);
        prop_assert!(m >= lo && m <= hi);
    }

    /// Virtual clocks with identical epoch updates stay identical, and
    /// virtual time is monotone, for arbitrary update sequences.
    #[test]
    fn virtual_clock_epochs_deterministic(
        updates in prop::collection::vec((1u64..10_000_000, 1u64..10_000_000), 1..12)
    ) {
        let cfg = EpochConfig { interval_instr: 100_000, slope_min: 0.25, slope_max: 4.0 };
        let mut a = VirtualClock::new(VirtNanos::from_nanos(500), 1.0, Some(cfg));
        let mut b = a.clone();
        let mut instr = 0u64;
        let mut last = VirtNanos::ZERO;
        for (r, d) in updates {
            instr += 100_000;
            let v = a.virt(instr);
            prop_assert!(v >= last, "monotone across epochs");
            last = v;
            a.apply_epoch(SimTime::from_nanos(r), SimDuration::from_nanos(d));
            b.apply_epoch(SimTime::from_nanos(r), SimDuration::from_nanos(d));
            prop_assert_eq!(a.virt(instr + 50_000), b.virt(instr + 50_000));
        }
    }

    /// Speed profiles: branch/time conversion round-trips within a couple
    /// of branches for arbitrary jitter and offsets.
    #[test]
    fn speed_profile_roundtrip(
        jitter in 0.0f64..0.2,
        start_us in 0u64..100_000,
        branches in 1u64..200_000_000,
        seed in 0u64..1000,
    ) {
        let p = SpeedProfile::new(
            1.0e9,
            jitter,
            SimDuration::from_millis(10),
            SimRng::new(seed).stream("h"),
        );
        let t0 = SimTime::from_micros(start_us);
        let t1 = p.time_for_branches(t0, branches);
        let measured = p.branches_between(t0, t1);
        prop_assert!(measured.abs_diff(branches) <= 2, "{measured} vs {branches}");
    }

    /// Greedy placements are always valid for arbitrary cloud shapes.
    #[test]
    fn greedy_placement_always_valid(n in 3usize..24, cap in 1usize..8, seed in 0u64..50) {
        let placed = greedy_packing(n, cap, seed);
        prop_assert!(validate_placement(&placed, n, cap).is_ok());
    }

    /// Bose/Theorem-2 placements hit their promised count and validate,
    /// for every legal (n, c).
    #[test]
    fn bose_placement_promise(v in 1usize..6, c_raw in 1usize..16) {
        let n = 6 * v + 3;
        let c = (c_raw % ((n - 1) / 2)).max(1);
        let sys = BoseSystem::new(n).unwrap();
        let placement = sys.theorem2_placement(c).unwrap();
        prop_assert_eq!(placement.len(), sys.theorem2_count(c));
        prop_assert!(validate_placement(&placement, n, c).is_ok());
    }

    /// PGM delivers every payload in order under arbitrary loss patterns,
    /// once NAK retransmissions are drained.
    #[test]
    fn pgm_reliable_under_loss(loss_mask in prop::collection::vec(any::<bool>(), 1..40)) {
        let mut tx = PgmSender::new(256);
        let mut rx = PgmReceiver::new();
        let n = loss_mask.len();
        let mut delivered: Vec<usize> = Vec::new();
        for (i, lost) in loss_mask.iter().enumerate() {
            let pkt = tx.send(i);
            if !*lost {
                let out = rx.on_packet(pkt);
                delivered.extend(out.delivered);
                // NAKs answered immediately (the cloud does this over links).
                for retx in tx.on_nak(&out.nak_missing) {
                    delivered.extend(rx.on_packet(retx).delivered);
                }
            }
        }
        // Drain remaining gaps via the periodic NAK path.
        for _ in 0..n {
            let naks = rx.pending_naks();
            if naks.is_empty() {
                break;
            }
            for retx in tx.on_nak(&naks) {
                delivered.extend(rx.on_packet(retx).delivered);
            }
        }
        // Everything except a possibly-lost tail (no later packet revealed
        // the gap) is delivered in order.
        let tail_delivered = delivered.len();
        prop_assert!(delivered.iter().copied().eq(0..tail_delivered));
        // If the last send was received, everything must have arrived.
        if !loss_mask[n - 1] {
            prop_assert_eq!(tail_delivered, n);
        }
    }
}

#[test]
fn detector_needs_more_observations_under_median() {
    // Deterministic spot-check of the headline security property across a
    // grid of victim distinctiveness values.
    for lp in [0.3, 0.5, 0.7, 10.0 / 11.0] {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(lp);
        let raw = Detector::from_cdfs(&base, &victim, 10);
        let m_null = OrderStat::median_of_three(base, base, base);
        let m_alt = OrderStat::median_of_three(victim, base, base);
        let med = Detector::from_cdfs(&m_null, &m_alt, 10);
        for c in [0.8, 0.95] {
            assert!(
                med.observations_needed(c) > raw.observations_needed(c),
                "lp={lp} c={c}"
            );
        }
    }
}
