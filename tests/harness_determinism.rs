//! The harness determinism contract: a sweep's JSON aggregate is
//! byte-identical regardless of runner thread count, because every
//! scenario is an isolated deterministic simulation and aggregation is a
//! pure fold in grid order.

use harness::prelude::*;
use simkit::time::SimDuration;

fn demo_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("determinism", "web-http")
        .axis("cfg.delta_n_ms", &[2u64, 10])
        .axis("cfg.defense", &["baseline", "stopwatch"])
        .seed_shards(7, 2);
    spec.base_params = vec![
        ("bytes".to_string(), "20000".to_string()),
        ("downloads".to_string(), "1".to_string()),
    ];
    spec.base_overrides = vec![
        ("broadcast_band".to_string(), "off".to_string()),
        ("disk".to_string(), "ssd".to_string()),
    ];
    spec.duration = SimDuration::from_secs(60);
    spec
}

fn sweep_json(threads: usize) -> String {
    sweep_json_mode(threads, false)
}

fn sweep_json_mode(threads: usize, scalar_reference: bool) -> String {
    let mut spec = demo_spec();
    spec.scalar_reference = scalar_reference;
    let scenarios = spec.scenarios().expect("spec expands");
    assert_eq!(scenarios.len(), 8, "2 x 2 grid x 2 seeds");
    let outcomes = run_scenarios(
        &scenarios,
        &RunnerOptions {
            threads,
            progress: false,
        },
    );
    SweepReport::from_outcomes(&spec.name, &outcomes, None).to_json()
}

#[test]
fn sweep_json_is_byte_identical_at_1_2_and_8_threads() {
    let one = sweep_json(1);
    let two = sweep_json(2);
    let eight = sweep_json(8);
    assert_eq!(one, two, "1-thread vs 2-thread JSON");
    assert_eq!(two, eight, "2-thread vs 8-thread JSON");
    // And the run was not vacuous: all cells populated, no failures.
    assert!(one.contains("\"scenarios\": 8"));
    assert!(one.contains("\"failures\": []"));
    assert!(one.contains("cfg.delta_n_ms=10,cfg.defense=stopwatch"));
    // The report header carries the schema version, and every cell embeds
    // its fully-resolved construction inputs (config knobs + workload
    // params + seeds) so any cell is reproducible from the report alone.
    assert!(one.contains(&format!(
        "\"schema_version\": {}",
        harness::aggregate::REPORT_SCHEMA_VERSION
    )));
    assert!(one.contains("\"resolved\""));
    assert!(one.contains("\"workload\": \"web-http\""));
    assert!(one.contains("\"delta_n_ms\": \"2\""), "swept knob value");
    assert!(one.contains("\"disk\": \"ssd\""), "base override value");
    assert!(one.contains("\"bytes\": \"20000\""), "explicit param");
    assert!(one.contains("\"file_id\": \"1\""), "schema-default param");
    assert!(one.contains("\"seeds\": ["), "per-cell shard seeds");
}

#[test]
fn repeated_runs_are_identical() {
    assert_eq!(sweep_json(4), sweep_json(4), "same spec, same bytes");
}

/// The hot-path batching contract: the batched engine (same-time FIFO
/// lane, burst median agreement) and the retained scalar reference paths
/// (one heap pop per event, one median per proposal) must produce
/// **byte-identical** sweep JSON — batching changed speed, not behavior.
/// `events_executed` is embedded per cell, so even a silently
/// created-then-cancelled extra event would show up here.
#[test]
fn batched_and_scalar_engines_produce_identical_sweep_json() {
    let batched = sweep_json_mode(4, false);
    let scalar = sweep_json_mode(4, true);
    assert_eq!(batched, scalar, "batched vs scalar-reference JSON");
    assert!(
        batched.contains("\"failures\": []"),
        "runs were not vacuous"
    );
}

/// The same contracts for the cache-channel workload, whose probe
/// proposals ride the PGM streams next to network proposals: thread
/// count and engine arm must not change a byte of the aggregate.
#[test]
fn cache_channel_sweep_is_thread_count_and_engine_arm_invariant() {
    let json = |threads: usize, scalar_reference: bool| {
        let mut spec = SweepSpec::new("cache-det", "cache-channel")
            .axis("cfg.defense", &["baseline", "stopwatch"])
            .seed_shards(7, 2);
        spec.base_params = vec![
            ("rounds".to_string(), "8".to_string()),
            ("sets".to_string(), "4".to_string()),
            ("secret".to_string(), "1".to_string()),
        ];
        spec.base_overrides = vec![
            ("broadcast_band".to_string(), "off".to_string()),
            ("disk".to_string(), "ssd".to_string()),
        ];
        spec.duration = SimDuration::from_secs(60);
        spec.scalar_reference = scalar_reference;
        let scenarios = spec.scenarios().expect("spec expands");
        let outcomes = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads,
                progress: false,
            },
        );
        SweepReport::from_outcomes(&spec.name, &outcomes, None).to_json()
    };
    let one = json(1, false);
    assert_eq!(one, json(8, false), "1-thread vs 8-thread JSON");
    assert_eq!(one, json(2, true), "batched vs scalar-reference JSON");
    assert!(one.contains("\"failures\": []"), "runs were not vacuous");
    assert!(one.contains("\"cache_irq\""), "probe counters aggregated");
}
