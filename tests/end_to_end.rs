//! Whole-system integration tests: the full defense pipeline from client
//! through ingress, median agreement, deterministic replicas, and egress
//! voting — including deliberate fault injection.

use std::any::Any;
use std::cell::Cell;
use stopwatch_repro::prelude::*;

/// Echo guest with a configurable "identity" used to inject divergence.
struct EchoGuest {
    salt: u64,
}

impl GuestProgram for EchoGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}
    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        if let Body::Raw { tag, len } = *packet.body() {
            env.send(
                packet.src(),
                Body::Raw {
                    tag: tag + 1 + self.salt,
                    len,
                },
            );
        }
    }
    fn on_disk_done(
        &mut self,
        _op: storage::device::DiskOp,
        _r: BlockRange,
        _d: &[u64],
        _env: &mut GuestEnv,
    ) {
    }
}

struct PingClient {
    me: EndpointId,
    server: EndpointId,
    to_send: u32,
    sent: u32,
    replies: Vec<(SimTime, u64)>,
}

impl ClientApp for PingClient {
    fn on_start(&mut self, _now: SimTime) -> Vec<Packet> {
        self.next()
    }
    fn on_packet(&mut self, p: &Packet, now: SimTime) -> Vec<Packet> {
        if let Body::Raw { tag, .. } = *p.body() {
            self.replies.push((now, tag));
        }
        Vec::new()
    }
    fn on_tick(&mut self, _now: SimTime) -> Vec<Packet> {
        self.next()
    }
    fn is_done(&self) -> bool {
        self.replies.len() as u32 >= self.to_send
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl PingClient {
    fn next(&mut self) -> Vec<Packet> {
        if self.sent >= self.to_send {
            return Vec::new();
        }
        let tag = u64::from(self.sent) * 100;
        self.sent += 1;
        vec![Packet::new(
            self.me,
            self.server,
            Body::Raw { tag, len: 80 },
        )]
    }
}

fn build_ping_cloud(
    seed: u64,
    pings: u32,
    salt_per_replica: bool,
) -> (CloudSim, VmHandle, ClientHandle) {
    let mut cfg = CloudConfig::fast_test();
    cfg.seed = seed;
    let mut b = CloudBuilder::new(cfg, 3);
    let counter = Cell::new(0u64);
    let vm = b.add_stopwatch_vm(&[0, 1, 2], move || {
        // When injecting a fault, exactly ONE replica (the third built)
        // behaves differently — breaking determinism on purpose.
        let c = counter.get();
        counter.set(c + 1);
        let salt = if salt_per_replica && c == 2 { 99 } else { 0 };
        Box::new(EchoGuest { salt })
    });
    let client = b.add_client(Box::new(PingClient {
        me: EndpointId(2000),
        server: vm.endpoint,
        to_send: pings,
        sent: 0,
        replies: Vec::new(),
    }));
    (b.build(), vm, client)
}

#[test]
fn full_pipeline_delivers_exactly_once() {
    let (mut sim, vm, client) = build_ping_cloud(3, 5, false);
    sim.run_until_clients_done(SimTime::from_secs(10));
    let replies = &sim.cloud.client_app::<PingClient>(client).unwrap().replies;
    assert_eq!(replies.len(), 5);
    let mut tags: Vec<u64> = replies.iter().map(|r| r.1).collect();
    tags.sort_unstable();
    assert_eq!(tags, vec![1, 101, 201, 301, 401]);
    // Exactly one egress forward per reply; no divergence; no replica left
    // behind on deliveries.
    assert_eq!(sim.cloud.stats().get("egress_forwarded"), 5);
    assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
    for r in 0..3 {
        assert_eq!(sim.cloud.delivered_log(vm, r).len(), 5, "replica {r}");
    }
}

#[test]
fn same_seed_reproduces_bit_identical_results() {
    let run = |seed| {
        let (mut sim, vm, client) = build_ping_cloud(seed, 4, false);
        let t = sim.run_until_clients_done(SimTime::from_secs(10));
        let replies = sim
            .cloud
            .client_app::<PingClient>(client)
            .unwrap()
            .replies
            .clone();
        (t, replies, sim.cloud.delivered_log(vm, 0))
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "identical seeds must give identical runs");
    let c = run(8);
    assert_ne!(a.1, c.1, "different seeds should differ in timing");
}

#[test]
fn replica_delivery_logs_identical_across_hosts() {
    let (mut sim, vm, _client) = build_ping_cloud(11, 8, false);
    sim.run_until_clients_done(SimTime::from_secs(10));
    let l0 = sim.cloud.delivered_log(vm, 0);
    let l1 = sim.cloud.delivered_log(vm, 1);
    let l2 = sim.cloud.delivered_log(vm, 2);
    assert_eq!(l0, l1);
    assert_eq!(l1, l2);
}

#[test]
fn egress_voting_detects_divergent_replica() {
    // One replica salted differently: its outputs disagree; the egress
    // flags divergence but the two honest replicas still serve the client.
    let (mut sim, _vm, client) = build_ping_cloud(5, 3, true);
    sim.run_until_clients_done(SimTime::from_secs(10));
    assert!(
        sim.cloud.stats().get("egress_divergences") > 0,
        "divergence must be detected"
    );
    let replies = &sim.cloud.client_app::<PingClient>(client).unwrap().replies;
    assert_eq!(replies.len(), 3, "service still completes by majority");
}

#[test]
fn five_replica_configuration_works() {
    // Sec. IX: hardening against collaborating attackers by using five
    // replicas.
    let mut cfg = CloudConfig::fast_test();
    cfg.replicas = 5;
    let mut b = CloudBuilder::new(cfg, 5);
    let vm = b.add_stopwatch_vm(&[0, 1, 2, 3, 4], || Box::new(EchoGuest { salt: 0 }));
    let client = b.add_client(Box::new(PingClient {
        me: EndpointId(2000),
        server: vm.endpoint,
        to_send: 3,
        sent: 0,
        replies: Vec::new(),
    }));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(10));
    assert_eq!(
        sim.cloud
            .client_app::<PingClient>(client)
            .unwrap()
            .replies
            .len(),
        3
    );
    // All five replicas delivered identically.
    let logs: Vec<_> = (0..5).map(|r| sim.cloud.delivered_log(vm, r)).collect();
    for l in &logs[1..] {
        assert_eq!(&logs[0], l);
    }
    assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
}

#[test]
fn multiple_vms_share_the_cloud() {
    // Two protected VMs with edge-disjoint-ish placement on 5 hosts (they
    // share at most one host pair-wise), plus clients for each.
    let mut cfg = CloudConfig::fast_test();
    cfg.seed = 9;
    let mut b = CloudBuilder::new(cfg, 5);
    let vm_a = b.add_stopwatch_vm(&[0, 1, 2], || Box::new(EchoGuest { salt: 0 }));
    let vm_b = b.add_stopwatch_vm(&[0, 3, 4], || Box::new(EchoGuest { salt: 0 }));
    let ca = b.add_client(Box::new(PingClient {
        me: EndpointId(2000),
        server: vm_a.endpoint,
        to_send: 4,
        sent: 0,
        replies: Vec::new(),
    }));
    let cb = b.add_client(Box::new(PingClient {
        me: EndpointId(2001),
        server: vm_b.endpoint,
        to_send: 4,
        sent: 0,
        replies: Vec::new(),
    }));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(10));
    assert_eq!(
        sim.cloud
            .client_app::<PingClient>(ca)
            .unwrap()
            .replies
            .len(),
        4
    );
    assert_eq!(
        sim.cloud
            .client_app::<PingClient>(cb)
            .unwrap()
            .replies
            .len(),
        4
    );
    assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
}

#[test]
fn proposal_loss_recovered_by_pgm() {
    // Lossy LAN between hosts: PGM NAKs recover lost proposals and the
    // service still completes.
    let mut cfg = CloudConfig::fast_test();
    cfg.lan = LinkModel {
        loss_prob: 0.05,
        ..LinkModel::lan()
    };
    let mut b = CloudBuilder::new(cfg, 3);
    let vm = b.add_stopwatch_vm(&[0, 1, 2], || Box::new(EchoGuest { salt: 0 }));
    let client = b.add_client(Box::new(PingClient {
        me: EndpointId(2000),
        server: vm.endpoint,
        to_send: 10,
        sent: 0,
        replies: Vec::new(),
    }));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(30));
    let replies = sim
        .cloud
        .client_app::<PingClient>(client)
        .unwrap()
        .replies
        .len();
    assert!(
        replies >= 8,
        "most pings must survive 5% proposal loss, got {replies}"
    );
}
